/**
 * @file
 * Unit tests for SP-prediction's Table 3 behaviours: d=0 warm-up,
 * d=1 last signature, d=2 stable intersection, stride-2 patterns,
 * lock-holder unions, confidence-driven recovery and noisy-instance
 * filtering.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "core/sp_predictor.hh"

using namespace spp;

namespace {

struct SpFixture : ::testing::Test
{
    Config cfg;
    SpPredictor pred{cfg, 16};

    PredictionQuery
    query(CoreId core, bool write = false)
    {
        PredictionQuery q;
        q.core = core;
        q.line = 0x1000;
        q.macroBlock = 0x10;
        q.pc = 0x40;
        q.isWrite = write;
        return q;
    }

    void
    syncPoint(CoreId core, std::uint64_t sid,
              SyncType type = SyncType::barrier,
              CoreId prev_holder = invalidCore)
    {
        SyncPointInfo info;
        info.type = type;
        info.staticId = sid;
        info.prevHolder = prev_holder;
        pred.onSyncPoint(core, info);
    }

    /** Run one epoch instance communicating with @p who. */
    void
    epochWith(CoreId core, std::uint64_t sid, const CoreSet &who,
              unsigned misses = 20)
    {
        syncPoint(core, sid);
        for (unsigned i = 0; i < misses; ++i) {
            pred.trainResponse(query(core), who);
            pred.feedback(core, Prediction{}, true, false);
        }
    }
};

} // namespace

TEST_F(SpFixture, NoHistoryNoPrediction)
{
    syncPoint(0, 1);
    EXPECT_FALSE(pred.predict(query(0)).valid());
}

TEST_F(SpFixture, WarmupExtraction)
{
    syncPoint(0, 1);
    // 30 misses of warm-up, all towards core 7.
    for (unsigned i = 0; i < cfg.warmupMisses; ++i) {
        pred.trainResponse(query(0), CoreSet{7});
        pred.feedback(0, Prediction{}, true, false);
    }
    Prediction p = pred.predict(query(0));
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(p.targets, CoreSet{7});
    EXPECT_EQ(p.source, PredSource::warmup);
    EXPECT_EQ(pred.stats().warmupExtractions.value(), 1u);
}

TEST_F(SpFixture, HistoryDepthOne)
{
    epochWith(0, 1, CoreSet{3});
    syncPoint(0, 1); // Second instance of the same static epoch.
    Prediction p = pred.predict(query(0));
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(p.targets, CoreSet{3});
    EXPECT_EQ(p.source, PredSource::history);
}

TEST_F(SpFixture, StableIntersection)
{
    // Two instances share core 3; extras differ. 20 misses each:
    // both targets exceed the 10% threshold each instance.
    epochWith(0, 1, CoreSet{3, 4});
    epochWith(0, 1, CoreSet{3, 5});
    syncPoint(0, 1);
    Prediction p = pred.predict(query(0));
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(p.targets, CoreSet{3}); // Last *stable* hot set.
}

TEST_F(SpFixture, StridePattern)
{
    epochWith(0, 1, CoreSet{3});
    epochWith(0, 1, CoreSet{9});
    epochWith(0, 1, CoreSet{3}); // A B A -> stride 2 detected.
    syncPoint(0, 1);
    Prediction p = pred.predict(query(0));
    ASSERT_TRUE(p.valid());
    // Next instance should be B = {9}.
    EXPECT_EQ(p.targets, CoreSet{9});
    EXPECT_EQ(p.source, PredSource::pattern);
    EXPECT_GE(pred.stats().patternHits.value(), 1u);
}

TEST_F(SpFixture, PatternsCanBeDisabled)
{
    cfg.enablePatterns = false;
    SpPredictor p2(cfg, 16);
    auto epoch = [&](const CoreSet &who) {
        SyncPointInfo info;
        info.type = SyncType::barrier;
        info.staticId = 1;
        p2.onSyncPoint(0, info);
        for (unsigned i = 0; i < 20; ++i) {
            p2.trainResponse(query(0), who);
            p2.feedback(0, Prediction{}, true, false);
        }
    };
    epoch(CoreSet{3});
    epoch(CoreSet{9});
    epoch(CoreSet{3});
    SyncPointInfo info;
    info.type = SyncType::barrier;
    info.staticId = 1;
    p2.onSyncPoint(0, info);
    Prediction p = p2.predict(query(0));
    ASSERT_TRUE(p.valid());
    EXPECT_NE(p.source, PredSource::pattern);
}

TEST_F(SpFixture, NoisyInstanceStoresNoSignature)
{
    // Fewer communicating misses than the noise threshold.
    epochWith(0, 1, CoreSet{3}, cfg.noiseMisses - 1);
    syncPoint(0, 1);
    EXPECT_FALSE(pred.predict(query(0)).valid());
    EXPECT_GE(pred.stats().noisyEpochs.value(), 1u);
}

TEST_F(SpFixture, LockHolderPrediction)
{
    // Core 2 acquires a lock previously released by core 9.
    syncPoint(2, 0xbeef, SyncType::lock, /*prev_holder=*/9);
    Prediction p = pred.predict(query(2));
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(p.targets, CoreSet{9});
    EXPECT_EQ(p.source, PredSource::lock);
    EXPECT_GE(pred.stats().lockEpochs.value(), 1u);
}

TEST_F(SpFixture, LockHistoryIsSharedAcrossCores)
{
    syncPoint(2, 0xbeef, SyncType::lock, 9);
    // A different core acquiring the same lock sees the sequence of
    // previous holders (9, then 2).
    syncPoint(5, 0xbeef, SyncType::lock, 2);
    Prediction p = pred.predict(query(5));
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(p.targets, (CoreSet{2, 9}));
}

TEST_F(SpFixture, SelfExcludedFromPrediction)
{
    epochWith(3, 1, CoreSet{3, 8}); // Own ID in the signature.
    syncPoint(3, 1);
    Prediction p = pred.predict(query(3));
    ASSERT_TRUE(p.valid());
    EXPECT_FALSE(p.targets.test(3));
    EXPECT_TRUE(p.targets.test(8));
}

TEST_F(SpFixture, ConfidenceRecovery)
{
    epochWith(0, 1, CoreSet{3});
    syncPoint(0, 1);
    Prediction p = pred.predict(query(0));
    ASSERT_TRUE(p.valid());

    // The communication has moved to core 12: feed wrong-prediction
    // feedback until confidence (4 bits -> 15) exhausts, while the
    // counters record the new target.
    for (unsigned i = 0; i < 16; ++i) {
        pred.trainResponse(query(0), CoreSet{12});
        pred.feedback(0, p, true, /*sufficient=*/false);
    }
    Prediction after = pred.predict(query(0));
    ASSERT_TRUE(after.valid());
    EXPECT_EQ(after.targets, CoreSet{12});
    EXPECT_EQ(after.source, PredSource::recovery);
    EXPECT_EQ(pred.stats().recoveries.value(), 1u);
}

TEST_F(SpFixture, CorrectFeedbackRestoresConfidence)
{
    epochWith(0, 1, CoreSet{3});
    syncPoint(0, 1);
    Prediction p = pred.predict(query(0));
    // Alternate wrong and right: confidence never empties.
    for (unsigned i = 0; i < 40; ++i) {
        pred.trainResponse(query(0), CoreSet{3});
        pred.feedback(0, p, true, i % 2 == 0);
    }
    EXPECT_EQ(pred.stats().recoveries.value(), 0u);
}

TEST_F(SpFixture, RecoveryCanBeDisabled)
{
    cfg.enableRecovery = false;
    SpPredictor p2(cfg, 16);
    SyncPointInfo info;
    info.type = SyncType::barrier;
    info.staticId = 1;
    p2.onSyncPoint(0, info);
    for (unsigned i = 0; i < 20; ++i) {
        p2.trainResponse(query(0), CoreSet{3});
        p2.feedback(0, Prediction{}, true, false);
    }
    p2.onSyncPoint(0, info);
    Prediction p = p2.predict(query(0));
    for (unsigned i = 0; i < 40; ++i) {
        p2.trainResponse(query(0), CoreSet{12});
        p2.feedback(0, p, true, false);
    }
    EXPECT_EQ(p2.stats().recoveries.value(), 0u);
}

TEST_F(SpFixture, EpochsTrackedPerCore)
{
    epochWith(0, 1, CoreSet{3});
    epochWith(1, 1, CoreSet{9});
    syncPoint(0, 1);
    syncPoint(1, 1);
    EXPECT_EQ(pred.predict(query(0)).targets, CoreSet{3});
    EXPECT_EQ(pred.predict(query(1)).targets, CoreSet{9});
}

TEST_F(SpFixture, StorageAndAccessesReported)
{
    epochWith(0, 1, CoreSet{3});
    syncPoint(0, 1);
    EXPECT_GT(pred.storageBits(), 0u);
    EXPECT_GT(pred.tableAccesses(), 0u);
}

// Section 5.4: the fixed (table-independent) predictor state is 17
// bytes per core on a 16-core machine — 16 one-byte communication
// counters plus the core's one-byte prediction-register slice.
TEST_F(SpFixture, FixedStorageMatchesPaper)
{
    // Fresh predictor, empty SP-table: only the fixed cost remains.
    const std::size_t per_core_bits = 16 * 8 + 8;
    EXPECT_EQ(per_core_bits, 136u); // = 17 bytes.
    EXPECT_EQ(pred.storageBits(), 16 * per_core_bits);

    // Table entries add on top of the fixed cost.
    epochWith(0, 1, CoreSet{3});
    syncPoint(0, 1);
    EXPECT_GT(pred.storageBits(), 16 * per_core_bits);
}

TEST_F(SpFixture, MigrationRemapsPrediction)
{
    epochWith(0, 1, CoreSet{3});
    syncPoint(0, 1); // Store the {3} signature (identity mapping).
    // Thread 3 migrates to core 11 before the next instance.
    pred.threadMap().migrate(3, 11);
    syncPoint(0, 1); // Re-form the predictor under the new mapping.
    Prediction p = pred.predict(query(0));
    ASSERT_TRUE(p.valid());
    EXPECT_EQ(p.targets, CoreSet{11});
}
