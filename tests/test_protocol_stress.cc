/**
 * @file
 * Randomized cross-protocol stress test (property-based): a swarm of
 * concurrent reads/writes over a small line pool, parameterized over
 * (protocol, predictor, seed). After draining, the coherence
 * invariants must hold, reads must observe committed versions
 * monotonically per line, and the directory state must match the
 * caches.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "harness.hh"

using namespace spp;
using namespace spp::test;

namespace {

struct StressParam
{
    Protocol protocol;
    PredictorKind predictor;
    std::uint64_t seed;

    friend std::ostream &
    operator<<(std::ostream &os, const StressParam &p)
    {
        return os << toString(p.protocol) << '_'
                  << toString(p.predictor) << "_s" << p.seed;
    }
};

class ProtocolStress : public ::testing::TestWithParam<StressParam>
{};

} // namespace

TEST_P(ProtocolStress, RandomSwarmKeepsInvariants)
{
    const StressParam param = GetParam();
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = param.protocol;
    cfg.predictor = param.predictor;
    ProtoHarness h(cfg);
    Rng rng(param.seed);

    // A small pool of lines to maximize conflict probability.
    constexpr unsigned pool = 12;
    constexpr Addr base = 0x40000;

    // Per-line highest version ever observed by any reader; reads
    // must never go backwards once a version was globally visible.
    std::map<Addr, std::uint64_t> floor;

    // Drive several waves of concurrent random accesses. Each core
    // issues one access per wave (in-order cores).
    unsigned outstanding_checks = 0;
    for (unsigned wave = 0; wave < 60; ++wave) {
        std::vector<std::tuple<CoreId, Addr, bool>> reqs;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            const Addr line =
                base + rng.below(pool) * cfg.lineBytes;
            const bool write = rng.chance(0.35);
            reqs.emplace_back(c, line, write);
        }
        auto outs = h.accessAll(reqs);
        // Within a wave accesses are concurrent (unordered); reads
        // are checked against the floor of *previous* waves only,
        // then the wave's observations merge into the floor.
        std::map<Addr, std::uint64_t> wave_max;
        for (std::size_t i = 0; i < outs.size(); ++i) {
            const auto &[core, line, write] = reqs[i];
            (void)core;
            const std::uint64_t v = outs[i].dataVersion;
            if (!write) {
                auto it = floor.find(line);
                if (it != floor.end()) {
                    EXPECT_GE(v, it->second)
                        << "stale read of line " << line
                        << " in wave " << wave;
                    ++outstanding_checks;
                }
            }
            wave_max[line] = std::max(wave_max[line], v);
        }
        for (const auto &[line, v] : wave_max)
            floor[line] = std::max(floor[line], v);
        ASSERT_TRUE(h.sys->drained()) << "wave " << wave;
    }
    EXPECT_GT(outstanding_checks, 0u);

    h.sys->checkCoherence();
    if (auto *dir = h.dir())
        dir->checkDirectory();
    EXPECT_GT(h.sys->stats().communicatingMisses.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Swarm, ProtocolStress,
    ::testing::Values(
        StressParam{Protocol::directory, PredictorKind::none, 1},
        StressParam{Protocol::directory, PredictorKind::none, 2},
        StressParam{Protocol::directory, PredictorKind::none, 3},
        StressParam{Protocol::broadcast, PredictorKind::none, 1},
        StressParam{Protocol::broadcast, PredictorKind::none, 2},
        StressParam{Protocol::broadcast, PredictorKind::none, 3},
        StressParam{Protocol::predicted, PredictorKind::sp, 1},
        StressParam{Protocol::predicted, PredictorKind::sp, 2},
        StressParam{Protocol::predicted, PredictorKind::sp, 3},
        StressParam{Protocol::predicted, PredictorKind::addr, 1},
        StressParam{Protocol::predicted, PredictorKind::addr, 2},
        StressParam{Protocol::predicted, PredictorKind::inst, 1},
        StressParam{Protocol::predicted, PredictorKind::inst, 2},
        StressParam{Protocol::predicted, PredictorKind::uni, 1},
        StressParam{Protocol::predicted, PredictorKind::uni, 2},
        StressParam{Protocol::multicast, PredictorKind::sp, 1},
        StressParam{Protocol::multicast, PredictorKind::sp, 2},
        StressParam{Protocol::multicast, PredictorKind::uni, 1}),
    [](const auto &info) {
        std::ostringstream os;
        os << info.param;
        return os.str();
    });
