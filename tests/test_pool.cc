/**
 * @file
 * Tests for the freelist pools behind the coherence hot path:
 * Pool<T> reuse semantics, PooledMap correctness under churn
 * (against a reference std::unordered_map, including backward-shift
 * deletion and address stability), and system-level leak checks —
 * after a drained run every pool must report live == 0.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/fuzzer.hh"
#include "common/pool.hh"
#include "sim/cmp_system.hh"
#include "workload/fuzz.hh"

using namespace spp;

namespace {

struct Payload
{
    int value = 0;
    std::vector<int> scratch;

    void
    poolReset()
    {
        value = 0;
        scratch.clear(); // Keeps capacity across reuse.
    }
};

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

TEST(Pool, ReusesReleasedSlots)
{
    Pool<Payload> pool;
    Payload *a = pool.acquire();
    a->value = 42;
    a->scratch.assign(100, 7);
    pool.release(a);

    Payload *b = pool.acquire();
    EXPECT_EQ(b, a); // LIFO freelist hands the slot back.
    EXPECT_EQ(b->value, 0);
    EXPECT_TRUE(b->scratch.empty());
    EXPECT_GE(b->scratch.capacity(), 100u); // poolReset kept it.

    const PoolStats &s = pool.stats();
    EXPECT_EQ(s.acquires, 2u);
    EXPECT_EQ(s.reuses, 1u);
    EXPECT_EQ(s.allocated, 1u);
    EXPECT_EQ(s.live, 1u);
    EXPECT_EQ(s.peak, 1u);
}

TEST(Pool, AddressesStayStableAcrossGrowth)
{
    Pool<Payload> pool;
    std::vector<Payload *> slots;
    for (int i = 0; i < 1000; ++i) {
        slots.push_back(pool.acquire());
        slots.back()->value = i;
    }
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(slots[i]->value, i);
    EXPECT_EQ(pool.stats().peak, 1000u);
    for (Payload *p : slots)
        pool.release(p);
    EXPECT_EQ(pool.stats().live, 0u);
}

TEST(PooledMap, InsertFindErase)
{
    PooledMap<Payload> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
    EXPECT_FALSE(map.erase(5));

    Payload &v = map.insert(5);
    v.value = 50;
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(5), nullptr);
    EXPECT_EQ(map.find(5)->value, 50);
    EXPECT_TRUE(map.contains(5));

    EXPECT_EQ(&map.findOrInsert(5), &v);
    Payload &w = map.findOrInsert(9);
    EXPECT_EQ(w.value, 0);
    EXPECT_EQ(map.size(), 2u);

    EXPECT_TRUE(map.erase(5));
    EXPECT_EQ(map.find(5), nullptr);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.stats().live, 1u);
}

TEST(PooledMap, MatchesReferenceUnderChurn)
{
    // Random insert/erase/lookup mix against std::unordered_map,
    // with regular (line-address-like) keys to stress probing and
    // backward-shift deletion. Also checks pointer stability: a
    // value's address must never change while its key is present.
    PooledMap<Payload> map;
    std::unordered_map<std::uint64_t, int> ref;
    std::unordered_map<std::uint64_t, Payload *> addrs;

    for (std::uint64_t step = 0; step < 20000; ++step) {
        const std::uint64_t h = mix(step * 2654435761ull + 17);
        const std::uint64_t key = (h % 512) * 64; // 512 "lines".
        switch ((h >> 32) % 3) {
          case 0: { // insert / overwrite
            Payload &v = map.findOrInsert(key);
            if (ref.count(key)) {
                EXPECT_EQ(addrs[key], &v) << "key " << key;
            } else {
                addrs[key] = &v;
            }
            v.value = static_cast<int>(step);
            ref[key] = static_cast<int>(step);
            break;
          }
          case 1: { // erase
            EXPECT_EQ(map.erase(key), ref.erase(key) == 1)
                << "key " << key;
            addrs.erase(key);
            break;
          }
          default: { // lookup
            Payload *v = map.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr) << "key " << key;
            } else {
                ASSERT_NE(v, nullptr) << "key " << key;
                EXPECT_EQ(v->value, it->second);
                EXPECT_EQ(v, addrs[key]);
            }
            break;
          }
        }
        EXPECT_EQ(map.size(), ref.size());
    }

    // Full drain through forEach + erase.
    std::vector<std::uint64_t> keys;
    map.forEach([&](std::uint64_t k, Payload &v) {
        EXPECT_EQ(v.value, ref.at(k));
        keys.push_back(k);
    });
    EXPECT_EQ(keys.size(), ref.size());
    for (std::uint64_t k : keys)
        EXPECT_TRUE(map.erase(k));
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.stats().live, 0u);
    EXPECT_GT(map.stats().reuses, 0u);
}

// --- System-level pool leak checks ----------------------------------

namespace {

/** Run one small fuzz workload and return the drained system. */
void
expectPoolsDrained(Protocol protocol, PredictorKind predictor)
{
    FuzzCase c;
    c.protocol = protocol;
    c.predictor = predictor;
    c.workload.seed = 12345;
    const Config cfg = fuzzConfig(c);
    CmpSystem sys(cfg);
    const wl::FuzzWorkloadParams wl = c.workload;
    RunResult rr;
    const RunStatus status = sys.tryRun(
        [wl](ThreadContext &ctx) { return wl::fuzzProgram(ctx, wl); },
        rr);
    ASSERT_EQ(status, RunStatus::ok) << toString(protocol);

    const MemSys &mem = sys.memSys();
    const PoolStats msg = mem.msgPoolStats();
    EXPECT_EQ(msg.live, 0u) << "leaked messages";
    EXPECT_GT(msg.acquires, 0u);
    EXPECT_GT(msg.reuses, 0u); // Steady state runs off the freelist.

    const PoolStats wb = mem.wbPoolStats();
    EXPECT_EQ(wb.live, 0u) << "leaked writeback entries";

    const PoolStats txn = mem.txnPoolStats();
    EXPECT_EQ(txn.live, 0u) << "leaked transaction entries";
    EXPECT_GT(txn.acquires, 0u);
}

} // namespace

TEST(PoolLeak, DirectoryDrainsAllPools)
{
    expectPoolsDrained(Protocol::directory, PredictorKind::none);
}

TEST(PoolLeak, BroadcastDrainsAllPools)
{
    expectPoolsDrained(Protocol::broadcast, PredictorKind::none);
}

TEST(PoolLeak, PredictedDrainsAllPools)
{
    expectPoolsDrained(Protocol::predicted, PredictorKind::sp);
}

TEST(PoolLeak, MulticastDrainsAllPools)
{
    expectPoolsDrained(Protocol::multicast, PredictorKind::sp);
}
