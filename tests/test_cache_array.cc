/**
 * @file
 * Unit tests for the set-associative cache array and address map.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/address_map.hh"
#include "mem/cache_array.hh"

using namespace spp;

TEST(CacheArray, MissOnEmpty)
{
    CacheArray c(4096, 2, 64);
    EXPECT_EQ(c.lookup(0x1000), nullptr);
    EXPECT_EQ(c.stats().misses.value(), 1u);
}

TEST(CacheArray, AllocateThenHit)
{
    CacheArray c(4096, 2, 64);
    CacheLine victim;
    CacheLine *l = c.allocate(0x1000, victim);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(victim.state, Mesif::invalid);
    l->state = Mesif::exclusive;
    CacheLine *hit = c.lookup(0x1000);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tag, 0x1000u);
    EXPECT_EQ(c.stats().hits.value(), 1u);
}

TEST(CacheArray, LruEviction)
{
    // 2 ways, 64B lines, 2 sets -> set stride 128.
    CacheArray c(256, 2, 64);
    CacheLine victim;
    auto fill = [&](Addr a) {
        CacheLine *l = c.allocate(a, victim);
        l->state = Mesif::shared;
    };
    fill(0x0000);
    fill(0x0080); // Same set as 0x0000.
    // Touch 0x0000 so 0x0080 becomes LRU.
    EXPECT_NE(c.lookup(0x0000), nullptr);
    fill(0x0100); // Same set again: must evict 0x0080.
    EXPECT_EQ(victim.tag, 0x0080u);
    EXPECT_EQ(victim.state, Mesif::shared);
    EXPECT_NE(c.peek(0x0000), nullptr);
    EXPECT_EQ(c.peek(0x0080), nullptr);
}

TEST(CacheArray, DirtyEvictionCounted)
{
    CacheArray c(128, 1, 64); // 2 sets, direct mapped.
    CacheLine victim;
    CacheLine *l = c.allocate(0x0000, victim);
    l->state = Mesif::modified;
    c.allocate(0x0080, victim); // Evicts the dirty line.
    EXPECT_EQ(victim.state, Mesif::modified);
    EXPECT_EQ(c.stats().dirtyEvictions.value(), 1u);
}

TEST(CacheArray, Invalidate)
{
    CacheArray c(4096, 2, 64);
    CacheLine victim;
    c.allocate(0x40, victim)->state = Mesif::forwarding;
    EXPECT_EQ(c.invalidate(0x40), Mesif::forwarding);
    EXPECT_EQ(c.peek(0x40), nullptr);
    EXPECT_EQ(c.invalidate(0x40), Mesif::invalid); // Already gone.
}

TEST(CacheArray, ValidCount)
{
    CacheArray c(4096, 2, 64);
    CacheLine victim;
    EXPECT_EQ(c.validCount(), 0u);
    c.allocate(0x40, victim)->state = Mesif::shared;
    c.allocate(0x80, victim)->state = Mesif::modified;
    EXPECT_EQ(c.validCount(), 2u);
}

TEST(CacheArray, PeekDoesNotTouchLru)
{
    CacheArray c(128, 2, 64); // One set, two ways.
    CacheLine victim;
    c.allocate(0x000, victim)->state = Mesif::shared;
    c.allocate(0x040, victim)->state = Mesif::shared;
    // Peek 0x000 (no LRU update) then allocate: 0x000 is still LRU.
    c.peek(0x000);
    c.allocate(0x080, victim);
    EXPECT_EQ(victim.tag, 0x000u);
}

TEST(CacheArray, ForEachValid)
{
    CacheArray c(4096, 2, 64);
    CacheLine victim;
    c.allocate(0x40, victim)->state = Mesif::shared;
    c.allocate(0x80, victim)->state = Mesif::exclusive;
    unsigned n = 0;
    c.forEachValid([&](const CacheLine &) { ++n; });
    EXPECT_EQ(n, 2u);
}

// --- Address map ---

TEST(AddressMap, LineAndMacroBlock)
{
    Config cfg; // 64B lines, 256B macroblocks, 16 cores.
    AddressMap map(cfg);
    EXPECT_EQ(map.lineAddr(0x1234), 0x1200u);
    EXPECT_EQ(map.lineNum(0x1234), 0x48u);
    EXPECT_EQ(map.macroBlock(0x1234), 0x12u);
    EXPECT_EQ(map.lineShift(), 6u);
}

TEST(AddressMap, HomeNodeInterleaving)
{
    Config cfg;
    AddressMap map(cfg);
    EXPECT_EQ(map.homeNode(0x0000), 0u);
    EXPECT_EQ(map.homeNode(0x0040), 1u);
    EXPECT_EQ(map.homeNode(0x0400), 0u); // 16 lines later wraps.
    for (Addr a = 0; a < 0x10000; a += 64)
        EXPECT_LT(map.homeNode(a), cfg.numCores);
}

TEST(Mesif, Helpers)
{
    EXPECT_TRUE(canForward(Mesif::modified));
    EXPECT_TRUE(canForward(Mesif::exclusive));
    EXPECT_TRUE(canForward(Mesif::forwarding));
    EXPECT_FALSE(canForward(Mesif::shared));
    EXPECT_FALSE(canForward(Mesif::invalid));
    EXPECT_TRUE(isWritable(Mesif::modified));
    EXPECT_TRUE(isWritable(Mesif::exclusive));
    EXPECT_FALSE(isWritable(Mesif::shared));
    EXPECT_TRUE(isDirty(Mesif::modified));
    EXPECT_FALSE(isDirty(Mesif::exclusive));
    EXPECT_STREQ(toString(Mesif::forwarding), "F");
}
