/**
 * @file
 * Workload-suite tests: every registered workload completes under
 * every protocol at a reduced scale, generates communication, and
 * leaves the system coherent. Parameterized sweep (17 workloads x 3
 * schemes).
 */

#include <gtest/gtest.h>

#include "analysis/epoch_stats.hh"
#include "analysis/experiment.hh"
#include "workload/workload.hh"

using namespace spp;

namespace {

struct WlParam
{
    std::string workload;
    Protocol protocol;
    PredictorKind predictor;
};

class WorkloadSweep : public ::testing::TestWithParam<WlParam>
{};

std::vector<WlParam>
allParams()
{
    std::vector<WlParam> params;
    for (const auto &spec : workloadRegistry()) {
        params.push_back(
            {spec.name, Protocol::directory, PredictorKind::none});
        params.push_back(
            {spec.name, Protocol::broadcast, PredictorKind::none});
        params.push_back(
            {spec.name, Protocol::predicted, PredictorKind::sp});
        params.push_back(
            {spec.name, Protocol::multicast, PredictorKind::sp});
    }
    return params;
}

} // namespace

TEST_P(WorkloadSweep, RunsToCompletionCoherently)
{
    const WlParam &p = GetParam();
    ExperimentConfig cfg;
    cfg.config.protocol = p.protocol;
    cfg.config.predictor = p.predictor;
    cfg.scale = 0.25;
    cfg.collectTrace = true;
    cfg.checkCoherence = true;
    ExperimentResult r = runExperiment(p.workload, cfg);

    EXPECT_GT(r.run.ticks, 0u);
    EXPECT_GT(r.run.mem.misses.value(), 0u);
    EXPECT_GT(r.run.mem.communicatingMisses.value(), 0u);
    EXPECT_LE(r.run.mem.communicatingMisses.value(),
              r.run.mem.misses.value());
    EXPECT_GT(r.run.sync.syncPoints.value(), 0u);
    EXPECT_GT(r.run.noc.flitBytes.value(), 0u);

    // Epoch accounting is sane.
    const EpochStats es = computeEpochStats(*r.trace);
    EXPECT_GT(es.dynEpochsPerCore, 0.0);

    if (p.protocol == Protocol::predicted ||
        p.protocol == Protocol::multicast) {
        EXPECT_GT(r.run.mem.predictionsAttempted.value(), 0u)
            << "SP-prediction never fired on " << p.workload;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweep, ::testing::ValuesIn(allParams()),
    [](const auto &info) {
        std::string name = info.param.workload + "_" +
            toString(info.param.protocol);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(WorkloadRegistry, HasAllSeventeen)
{
    EXPECT_EQ(workloadRegistry().size(), 17u);
    EXPECT_NE(findWorkload("fmm"), nullptr);
    EXPECT_NE(findWorkload("x264"), nullptr);
    EXPECT_EQ(findWorkload("nosuch"), nullptr);
}

TEST(WorkloadRegistry, MetadataMatchesPaperTable1)
{
    const WorkloadSpec *sc = findWorkload("streamcluster");
    ASSERT_NE(sc, nullptr);
    EXPECT_EQ(sc->paperStaticCS, 1u);
    EXPECT_EQ(sc->paperDynEpochs, 11454u);
    const WorkloadSpec *ws = findWorkload("water-sp");
    ASSERT_NE(ws, nullptr);
    EXPECT_EQ(ws->paperStaticEpochs, 1u);
}

TEST(WorkloadCharacter, FewVsManyEpochRegimes)
{
    // The epoch-count regimes of Table 1 must be preserved: x264 and
    // ferret are sparse in sync-points, streamcluster and ocean are
    // dense.
    auto dyn_epochs = [](const char *name) {
        ExperimentConfig cfg;
        cfg.scale = 0.5;
        cfg.collectTrace = true;
        ExperimentResult r = runExperiment(name, cfg);
        return computeEpochStats(*r.trace).dynEpochsPerCore;
    };
    const double sparse = dyn_epochs("x264");
    const double dense = dyn_epochs("streamcluster");
    EXPECT_GT(dense, 3.0 * sparse);
}

TEST(WorkloadCharacter, RadixIsPrivateHeavy)
{
    ExperimentConfig cfg;
    cfg.scale = 0.5;
    ExperimentResult radix = runExperiment("radix", cfg);
    ExperimentResult x264 = runExperiment("x264", cfg);
    EXPECT_LT(radix.commMissFraction(), 0.25);
    EXPECT_GT(x264.commMissFraction(), 0.5);
}
