/**
 * @file
 * Scalable sharer-set representations: SharerTracker semantics per
 * format, the superset invariant against an exact reference model,
 * the modelled storage costs, and an end-to-end regression that
 * coarse-vector supersets never let a protocol violate SWMR.
 */

#include <gtest/gtest.h>

#include "check/fuzzer.hh"
#include "common/rng.hh"
#include "common/sharer_tracker.hh"

using namespace spp;

namespace {

SharerLayout
mkLayout(SharerFormat f, unsigned n, unsigned k = 4, unsigned p = 4)
{
    SharerLayout l;
    l.format = f;
    l.nCores = n;
    l.coarseCoresPerBit = k;
    l.sharerPointers = p;
    return l;
}

} // namespace

TEST(SharerTracker, DefaultMatchesPlainCoreSet)
{
    SharerTracker t;
    t.set(3);
    t.set(900);
    EXPECT_EQ(t.members(), (CoreSet{3, 900}));
    t.reset(3);
    EXPECT_EQ(t.members(), CoreSet{900});
    t.setSingle(7);
    EXPECT_EQ(t.members(), CoreSet{7});
    EXPECT_FALSE(t.overflowed());
}

TEST(SharerTracker, CoarseExpandsToGroups)
{
    SharerTracker t(mkLayout(SharerFormat::coarse, 16));
    t.set(5); // Group 1 = cores 4..7.
    EXPECT_EQ(t.members(), (CoreSet{4, 5, 6, 7}));
    EXPECT_TRUE(t.test(6)); // Conservative: whole group "may share".
    t.reset(5); // Per-core removal impossible; superset remains.
    EXPECT_EQ(t.members(), (CoreSet{4, 5, 6, 7}));
    t.setSingle(0); // Write path: exact single group again.
    EXPECT_EQ(t.members(), (CoreSet{0, 1, 2, 3}));
}

TEST(SharerTracker, CoarseClipsLastGroupToCoreCount)
{
    // 10 cores, K = 4: the last group holds only cores 8..9.
    SharerTracker t(mkLayout(SharerFormat::coarse, 10));
    t.set(9);
    EXPECT_EQ(t.members(), (CoreSet{8, 9}));
}

TEST(SharerTracker, LimitedExactUntilOverflow)
{
    SharerTracker t(mkLayout(SharerFormat::limited, 64, 4, 2));
    t.set(10);
    t.set(20);
    EXPECT_EQ(t.members(), (CoreSet{10, 20}));
    EXPECT_FALSE(t.overflowed());
    t.reset(10); // Exact removal works below the pointer limit.
    EXPECT_EQ(t.members(), CoreSet{20});
    t.set(30);
    t.set(40); // Third sharer with P = 2: degrade to broadcast.
    EXPECT_TRUE(t.overflowed());
    EXPECT_EQ(t.members(), CoreSet::all(64));
    EXPECT_TRUE(t.test(63));
    t.setSingle(5); // The next write makes the entry exact again.
    EXPECT_FALSE(t.overflowed());
    EXPECT_EQ(t.members(), CoreSet{5});
}

TEST(SharerTracker, EntryBitsPerFormat)
{
    EXPECT_EQ(SharerTracker::entryBits(mkLayout(SharerFormat::full, 64)),
              64u);
    EXPECT_EQ(SharerTracker::entryBits(mkLayout(SharerFormat::full, 1024)),
              1024u);
    // ceil(n / K) group bits.
    EXPECT_EQ(
        SharerTracker::entryBits(mkLayout(SharerFormat::coarse, 64, 4)),
        16u);
    EXPECT_EQ(
        SharerTracker::entryBits(mkLayout(SharerFormat::coarse, 1024, 8)),
        128u);
    // P * ceil(log2 n) + 1 overflow bit.
    EXPECT_EQ(
        SharerTracker::entryBits(mkLayout(SharerFormat::limited, 64, 4, 4)),
        4u * 6u + 1u);
    EXPECT_EQ(SharerTracker::entryBits(
                  mkLayout(SharerFormat::limited, 1024, 4, 8)),
              8u * 10u + 1u);
}

// The load-bearing invariant: whatever the op sequence, every format's
// members() is a superset of the exact sharer set, and test() never
// returns false for an actual sharer. Protocols rely on exactly this
// to keep SWMR when they multicast to the superset.
TEST(SharerTracker, SupersetInvariantUnderRandomOps)
{
    for (const SharerFormat f :
         {SharerFormat::full, SharerFormat::coarse,
          SharerFormat::limited}) {
        for (const unsigned n : {16u, 63u, 64u, 65u, 256u}) {
            SharerTracker t(mkLayout(f, n, 4, 4));
            CoreSet exact;
            Rng rng(77 * n + static_cast<unsigned>(f));
            for (int step = 0; step < 2000; ++step) {
                const CoreId c = static_cast<CoreId>(rng.below(n));
                switch (rng.below(4)) {
                  case 0:
                    t.set(c);
                    exact.set(c);
                    break;
                  case 1:
                    // Directory resets on writeback/invalidate-ack:
                    // the core really dropped its copy.
                    t.reset(c);
                    exact.reset(c);
                    break;
                  case 2:
                    t.setSingle(c);
                    exact = CoreSet::single(c);
                    break;
                  default:
                    if (!exact.empty()) {
                        ASSERT_TRUE(t.test(exact.first()))
                            << toString(f) << " n=" << n;
                    }
                    break;
                }
                ASSERT_TRUE(t.members().contains(exact))
                    << toString(f) << " n=" << n << " step " << step;
                if (f == SharerFormat::full) {
                    ASSERT_EQ(t.members(), exact);
                }
            }
        }
    }
}

// End-to-end SWMR regression: seeded random workloads under the
// protocol invariant checker, with the directory forced onto the
// inexact formats. Extra invalidations to never-sharers must be
// answered harmlessly and no store may ever see a stale second owner.
TEST(SharerFormats, CoarseMulticastNeverViolatesSwmr)
{
    for (const Protocol proto :
         {Protocol::directory, Protocol::predicted,
          Protocol::multicast}) {
        for (unsigned seed = 1; seed <= 3; ++seed) {
            FuzzCase c;
            c.protocol = proto;
            c.predictor = proto == Protocol::directory
                ? PredictorKind::none
                : PredictorKind::sp;
            c.sharerFormat = SharerFormat::coarse;
            c.workload.seed = seed;
            const FuzzResult r = runFuzzCase(c);
            EXPECT_FALSE(r.failed())
                << toString(proto) << " seed " << seed << "\n"
                << r.trace;
            EXPECT_TRUE(r.violations.empty());
        }
    }
}

TEST(SharerFormats, LimitedOverflowBroadcastStaysCoherent)
{
    for (unsigned seed = 1; seed <= 3; ++seed) {
        FuzzCase c;
        c.protocol = Protocol::directory;
        c.sharerFormat = SharerFormat::limited;
        c.numCores = 16; // > P = 4 sharers overflow readily.
        c.workload.seed = seed;
        const FuzzResult r = runFuzzCase(c);
        EXPECT_FALSE(r.failed()) << "seed " << seed << "\n" << r.trace;
    }
}
