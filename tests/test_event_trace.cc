/**
 * @file
 * Tests for the event-trace subsystem: recording, save/load
 * round-trip, and the offline predictor evaluator.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/event_trace.hh"
#include "workload/workload.hh"

using namespace spp;

namespace {

/** Record a small ocean run. */
EventTrace
recordOcean(double scale = 0.25)
{
    Config cfg;
    cfg.l2Bytes = 128 * 1024;
    cfg.l1Bytes = 4 * 1024;
    CmpSystem sys(cfg);
    EventTrace trace;
    trace.attach(sys);
    WorkloadParams params;
    params.scale = scale;
    const WorkloadSpec *spec = findWorkload("ocean");
    sys.run([&](ThreadContext &ctx) {
        return spec->run(ctx, params);
    });
    return trace;
}

} // namespace

TEST(EventTrace, RecordsMissesAndSyncPoints)
{
    EventTrace trace = recordOcean();
    EXPECT_GT(trace.size(), 1000u);
    unsigned misses = 0, syncs = 0, comm = 0;
    for (const TraceEvent &e : trace.events()) {
        if (e.kind == TraceEvent::Kind::miss) {
            ++misses;
            comm += e.communicating;
            EXPECT_LT(e.core, 16u);
            EXPECT_EQ(e.line % 64, 0u);
            if (e.communicating) {
                EXPECT_FALSE(e.targets.empty());
            }
        } else {
            ++syncs;
        }
    }
    EXPECT_GT(misses, 0u);
    EXPECT_GT(syncs, 0u);
    EXPECT_GT(comm, 0u);
}

TEST(EventTrace, SaveLoadRoundTrip)
{
    EventTrace trace = recordOcean();
    std::ostringstream os;
    trace.save(os);
    std::istringstream is(os.str());
    EventTrace loaded = EventTrace::load(is);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEvent &a = trace.events()[i];
        const TraceEvent &b = loaded.events()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.core, b.core);
        if (a.kind == TraceEvent::Kind::miss) {
            EXPECT_EQ(a.line, b.line);
            EXPECT_EQ(a.pc, b.pc);
            EXPECT_EQ(a.isWrite, b.isWrite);
            EXPECT_EQ(a.communicating, b.communicating);
            EXPECT_EQ(a.targets, b.targets);
        } else {
            EXPECT_EQ(a.type, b.type);
            EXPECT_EQ(a.staticId, b.staticId);
        }
    }
}

TEST(EventTrace, LoadRejectsGarbage)
{
    std::istringstream is("X this is not a trace\n");
    EXPECT_DEATH({ EventTrace::load(is); }, "malformed");
}

TEST(EventTrace, SyntheticAppend)
{
    EventTrace trace;
    TraceEvent e;
    e.kind = TraceEvent::Kind::syncPoint;
    e.core = 3;
    e.type = SyncType::barrier;
    e.staticId = 0x42;
    trace.append(e);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.events()[0].staticId, 0x42u);
}

TEST(OfflineReplay, SpAccuracyMatchesLiveBallpark)
{
    EventTrace trace = recordOcean(0.5);
    Config cfg;
    OfflineResult r = evaluateOffline(trace, cfg, PredictorKind::sp);
    EXPECT_GT(r.misses, 0u);
    EXPECT_GT(r.commMisses, 0u);
    // Ocean's stable neighbour pattern predicts well offline too.
    EXPECT_GT(r.accuracy(), 0.7);
    EXPECT_GT(r.storageBits, 0u);
}

TEST(OfflineReplay, AllPredictorsRun)
{
    EventTrace trace = recordOcean();
    Config cfg;
    for (auto kind : {PredictorKind::sp, PredictorKind::addr,
                      PredictorKind::inst, PredictorKind::uni}) {
        OfflineResult r = evaluateOffline(trace, cfg, kind);
        EXPECT_GT(r.attempted, 0u) << toString(kind);
        EXPECT_LE(r.sufficient, r.commMisses);
    }
}

TEST(OfflineReplay, DeterministicAcrossReplays)
{
    EventTrace trace = recordOcean();
    Config cfg;
    OfflineResult a = evaluateOffline(trace, cfg, PredictorKind::sp);
    OfflineResult b = evaluateOffline(trace, cfg, PredictorKind::sp);
    EXPECT_EQ(a.sufficient, b.sufficient);
    EXPECT_EQ(a.attempted, b.attempted);
}

TEST(OfflineReplay, SyntheticStableTrace)
{
    // Hand-built trace: 3 instances of one epoch, 20 communicating
    // misses towards core 7 each; the second and third instances are
    // fully predictable.
    EventTrace trace;
    for (int instance = 0; instance < 3; ++instance) {
        TraceEvent s;
        s.kind = TraceEvent::Kind::syncPoint;
        s.core = 0;
        s.type = SyncType::barrier;
        s.staticId = 0x11;
        trace.append(s);
        for (int i = 0; i < 20; ++i) {
            TraceEvent m;
            m.kind = TraceEvent::Kind::miss;
            m.core = 0;
            m.line = 0x1000 + i * 64;
            m.pc = 0x5;
            m.communicating = true;
            m.targets = CoreSet{7};
            trace.append(m);
        }
    }
    Config cfg;
    OfflineResult r = evaluateOffline(trace, cfg, PredictorKind::sp);
    EXPECT_EQ(r.commMisses, 60u);
    EXPECT_EQ(r.sufficient, 40u); // Instances 2 and 3.
    EXPECT_DOUBLE_EQ(r.predictedTargets, 1.0);
}
