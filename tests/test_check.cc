/**
 * @file
 * Tests for the protocol invariant checker and the stress-fuzz
 * harness built on it (src/check/).
 */

#include <gtest/gtest.h>

#include <string>

#include "check/fuzzer.hh"
#include "check/protocol_checker.hh"
#include "common/logging.hh"
#include "harness.hh"

using namespace spp;
using namespace spp::test;

namespace {

struct QuietGuard
{
    QuietGuard() { setQuiet(true); }
    ~QuietGuard() { setQuiet(false); }
};

FuzzCase
smallCase(Protocol p, PredictorKind k, std::uint64_t seed)
{
    FuzzCase c;
    c.protocol = p;
    c.predictor = k;
    c.workload.seed = seed;
    c.workload.segments = 6;
    c.workload.opsPerSegment = 16;
    return c;
}

} // namespace

// ---------------------------------------------------------------------
// Checker attached to scripted (non-fuzz) protocol runs.
// ---------------------------------------------------------------------

TEST(ProtocolChecker, CleanScriptedRunHasNoViolations)
{
    for (Protocol p : {Protocol::directory, Protocol::broadcast}) {
        Config cfg = ProtoHarness::smallConfig();
        cfg.protocol = p;
        ProtoHarness h(cfg);
        CheckerOptions opts;
        opts.abortOnViolation = false;
        ProtocolChecker chk(*h.sys, opts);
        h.access(0, 0x10000, true);
        h.access(1, 0x10000, false);
        h.access(2, 0x10000, true);
        h.accessAll({{3, 0x10040, true}, {4, 0x10040, true}});
        chk.checkQuiescent();
        EXPECT_TRUE(chk.violations().empty())
            << chk.violations().front().rule << ": "
            << chk.violations().front().detail;
        EXPECT_GT(chk.messagesChecked(), 0u);
    }
}

TEST(ProtocolChecker, DetachOnDestruction)
{
    ProtoHarness h;
    std::uint64_t seen = 0;
    {
        CheckerOptions opts;
        opts.abortOnViolation = false;
        ProtocolChecker chk(*h.sys, opts);
        h.access(0, 0x10000, false);
        seen = chk.messagesChecked();
        EXPECT_GT(seen, 0u);
    }
    // Checker destroyed: further traffic must not touch it (would
    // crash on a dangling hook if detach were missing).
    h.access(1, 0x10000, true);
    h.sys->checkCoherence();
}

// ---------------------------------------------------------------------
// Fuzz harness: clean runs, determinism, fault injection, shrinking.
// ---------------------------------------------------------------------

TEST(Fuzzer, CleanRunsAcrossAllProtocols)
{
    QuietGuard q;
    const std::pair<Protocol, PredictorKind> grid[] = {
        {Protocol::directory, PredictorKind::none},
        {Protocol::predicted, PredictorKind::sp},
        {Protocol::broadcast, PredictorKind::none},
        {Protocol::multicast, PredictorKind::sp},
    };
    for (const auto &[p, k] : grid) {
        for (std::uint64_t seed : {1, 7, 23}) {
            const FuzzCase c = smallCase(p, k, seed);
            const FuzzResult r = runFuzzCase(c);
            EXPECT_EQ(r.status, RunStatus::ok)
                << describeFuzzCase(c) << ": " << toString(r.status);
            EXPECT_TRUE(r.violations.empty())
                << describeFuzzCase(c) << ": "
                << r.violations.front().rule << ": "
                << r.violations.front().detail;
            EXPECT_GT(r.messagesChecked, 0u);
            EXPECT_GT(r.ticks, 0u);
        }
    }
}

TEST(Fuzzer, SameSeedIsDeterministic)
{
    QuietGuard q;
    const FuzzCase c =
        smallCase(Protocol::multicast, PredictorKind::sp, 42);
    const FuzzResult a = runFuzzCase(c);
    const FuzzResult b = runFuzzCase(c);
    EXPECT_EQ(a.messagesChecked, b.messagesChecked);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(Fuzzer, InjectedBugsAreCaught)
{
    QuietGuard q;
    for (unsigned bug : {1u, 2u, 3u}) {
        bool caught = false;
        for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
            // Default (full-size) workload shape: bug 2 only fires on
            // memory refills of stale lines, which the trimmed shape
            // used elsewhere rarely produces.
            FuzzCase c;
            c.workload.seed = seed;
            c.injectBug = bug;
            caught = runFuzzCase(c).failed();
        }
        EXPECT_TRUE(caught)
            << "injected bug " << bug
            << " survived 10 fuzz seeds undetected";
    }
}

TEST(Fuzzer, ShrunkCaseStillFailsAndIsNoLarger)
{
    QuietGuard q;
    FuzzCase failing;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
        FuzzCase c = smallCase(Protocol::directory,
                               PredictorKind::none, seed);
        c.injectBug = 1;
        if (runFuzzCase(c).failed()) {
            failing = c;
            found = true;
        }
    }
    ASSERT_TRUE(found);

    const FuzzCase minimal = shrinkFuzzCase(failing, 12);
    EXPECT_TRUE(runFuzzCase(minimal).failed());
    EXPECT_LE(minimal.workload.segments, failing.workload.segments);
    EXPECT_LE(minimal.workload.opsPerSegment,
              failing.workload.opsPerSegment);
    EXPECT_LE(minimal.workload.lines, failing.workload.lines);
    EXPECT_LE(minimal.workload.locks, failing.workload.locks);
    EXPECT_LE(minimal.workload.barriers, failing.workload.barriers);
}

TEST(Fuzzer, DescribeRendersReplayableLine)
{
    const FuzzCase c =
        smallCase(Protocol::predicted, PredictorKind::sp, 99);
    const std::string line = describeFuzzCase(c);
    EXPECT_NE(line.find("--protocol predicted"), std::string::npos);
    EXPECT_NE(line.find("--seed 99"), std::string::npos);
    EXPECT_NE(line.find("--segments 6"), std::string::npos);
    EXPECT_EQ(line.find("--inject"), std::string::npos);
}

TEST(Fuzzer, NonSquareCoreCountsGetValidMesh)
{
    QuietGuard q;
    FuzzCase c =
        smallCase(Protocol::directory, PredictorKind::none, 5);
    c.numCores = 6; // 3x2 mesh, not a perfect square.
    const Config cfg = fuzzConfig(c);
    EXPECT_EQ(cfg.meshX * cfg.meshY, 6u);
    const FuzzResult r = runFuzzCase(c);
    EXPECT_EQ(r.status, RunStatus::ok);
    EXPECT_TRUE(r.violations.empty());
}
