/**
 * @file
 * Bench CLI frontend tests: strict numeric flag parsing (the
 * std::atoi replacement), mesh factorization for awkward core
 * counts, --mesh/--cores consistency validation, and initBench
 * death tests proving bad input dies at the flag site with exit
 * code 1 instead of wrapping or silently misconfiguring a sweep.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hh"

using namespace spp;
using namespace spp::bench;

namespace {

/** Run initBench on a crafted argv (death-test child only). */
void
initBenchWith(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    initBench(static_cast<int>(args.size()),
              const_cast<char **>(args.data()));
}

} // namespace

TEST(ParseUnsigned, AcceptsPlainDecimal)
{
    EXPECT_EQ(parseUnsigned("--x", "42", 1, 100), 42u);
    EXPECT_EQ(parseUnsigned("--x", "1", 1, 100), 1u);
    EXPECT_EQ(parseUnsigned("--x", "100", 1, 100), 100u);
    EXPECT_EQ(parseUnsigned("--x", "0", 0, 0), 0u);
    EXPECT_EQ(parseUnsigned("--x", "007", 1, 100), 7u);
}

TEST(ParseUnsignedDeathTest, RejectsNonNumericInput)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(parseUnsigned("--cores", "abc", 1, 1024),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(parseUnsigned("--cores", "", 1, 1024),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(parseUnsigned("--cores", "16x", 1, 1024),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(parseUnsigned("--cores", " 16", 1, 1024),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(parseUnsigned("--cores", "1.5", 1, 1024),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(parseUnsigned("--cores", nullptr, 1, 1024),
                testing::ExitedWithCode(1), "--cores");
}

TEST(ParseUnsignedDeathTest, RejectsSignsInsteadOfWrapping)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // std::atoi would have turned "-1" into a huge unsigned.
    EXPECT_EXIT(parseUnsigned("--jobs", "-1", 1, 65536),
                testing::ExitedWithCode(1), "--jobs");
    EXPECT_EXIT(parseUnsigned("--jobs", "+4", 1, 65536),
                testing::ExitedWithCode(1), "--jobs");
}

TEST(ParseUnsignedDeathTest, RejectsOverflowAndOutOfRange)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(parseUnsigned("--cores", "99999999999999999999999",
                              1, 1024),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(parseUnsigned("--cores", "0", 1, 1024),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(parseUnsigned("--cores", "1025", 1, 1024),
                testing::ExitedWithCode(1), "--cores");
}

TEST(MeshFor, FactorsTowardSquare)
{
    unsigned x = 0, y = 0;
    meshFor(16, x, y);
    EXPECT_EQ(x, 4u);
    EXPECT_EQ(y, 4u);
    meshFor(12, x, y);
    EXPECT_EQ(x, 4u);
    EXPECT_EQ(y, 3u);
    meshFor(64, x, y);
    EXPECT_EQ(x, 8u);
    EXPECT_EQ(y, 8u);
    meshFor(1, x, y);
    EXPECT_EQ(x, 1u);
    EXPECT_EQ(y, 1u);
}

TEST(MeshFor, PrimeCoreCountsDegradeToRow)
{
    // Regression: a prime core count must yield an Nx1 mesh (and
    // cover all N cores), not a rounded-down square.
    for (unsigned n : {2u, 3u, 5u, 7u, 61u, 127u, 1021u}) {
        unsigned x = 0, y = 0;
        meshFor(n, x, y);
        EXPECT_EQ(x, n) << n;
        EXPECT_EQ(y, 1u) << n;
        EXPECT_EQ(x * y, n) << n;
    }
}

TEST(MeshFor, AlwaysCoversAllCores)
{
    for (unsigned n = 1; n <= 256; ++n) {
        unsigned x = 0, y = 0;
        meshFor(n, x, y);
        EXPECT_EQ(x * y, n) << n;
        EXPECT_GE(x, y) << n;
    }
}

TEST(GeometryError, AcceptsConsistentCombinations)
{
    EXPECT_EQ(geometryError(0, 0, 0), "");     // neither flag
    EXPECT_EQ(geometryError(16, 0, 0), "");    // cores only
    EXPECT_EQ(geometryError(0, 4, 4), "");     // mesh only
    EXPECT_EQ(geometryError(16, 4, 4), "");
    EXPECT_EQ(geometryError(61, 61, 1), "");   // prime row mesh
}

TEST(GeometryError, RejectsMismatchAndOversize)
{
    EXPECT_NE(geometryError(16, 5, 5), "");
    EXPECT_NE(geometryError(61, 8, 8), "");
    // 64x64 = 4096 exceeds the 1024-core build limit even though
    // each dimension alone is legal.
    EXPECT_NE(geometryError(0, 64, 64), "");
    EXPECT_NE(geometryError(4096, 64, 64), "");
}

TEST(InitBenchDeathTest, DiesAtTheFlagSite)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(initBenchWith({"--cores", "sixteen"}),
                testing::ExitedWithCode(1), "--cores");
    EXPECT_EXIT(initBenchWith({"--jobs", "-2"}),
                testing::ExitedWithCode(1), "--jobs");
    EXPECT_EXIT(initBenchWith({"--mesh", "4", "four"}),
                testing::ExitedWithCode(1), "--mesh");
    EXPECT_EXIT(initBenchWith({"--cores", "16", "--mesh", "5", "5"}),
                testing::ExitedWithCode(1), "--mesh 5x5");
    EXPECT_EXIT(initBenchWith({"--record"}),
                testing::ExitedWithCode(1), "--record");
}

TEST(InitBench, AcceptsValidGeometry)
{
    // Parsing side effects land in globals; restore them after.
    const unsigned cores = g_cores, mx = g_mesh_x, my = g_mesh_y;
    initBenchWith({"--cores", "61", "--mesh", "61", "1"});
    EXPECT_EQ(g_cores, 61u);
    EXPECT_EQ(g_mesh_x, 61u);
    EXPECT_EQ(g_mesh_y, 1u);
    g_cores = cores;
    g_mesh_x = mx;
    g_mesh_y = my;
}
