/**
 * @file
 * Multicast-snooping protocol tests: predicted-mask snoops, the
 * memory-side verification directory, insufficient-mask fallback,
 * and bandwidth savings over full broadcast.
 */

#include <gtest/gtest.h>

#include "coherence/multicast_protocol.hh"
#include "analysis/experiment.hh"
#include "harness.hh"

using namespace spp;
using namespace spp::test;

namespace {

Config
mcConfig()
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = Protocol::multicast;
    cfg.predictor = PredictorKind::sp;
    return cfg;
}

MulticastMemSys *
mc(ProtoHarness &h)
{
    return dynamic_cast<MulticastMemSys *>(h.sys.get());
}

/** Prime core @p core's SP register towards @p target. */
void
prime(ProtoHarness &h, CoreId core, CoreId target)
{
    SyncPointInfo info;
    info.type = SyncType::barrier;
    info.staticId = 0x80;
    PredictionQuery q;
    q.core = core;
    h.sp->onSyncPoint(core, info);
    for (int i = 0; i < 20; ++i) {
        h.sp->trainResponse(q, CoreSet::single(target));
        h.sp->feedback(core, Prediction{}, true, false);
    }
    h.sp->onSyncPoint(core, info);
}

} // namespace

TEST(Multicast, ColdReadFromMemory)
{
    ProtoHarness h(mcConfig());
    AccessOutcome out = h.access(0, 0x10000, false);
    EXPECT_TRUE(out.offChip);
    EXPECT_FALSE(out.communicating);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::exclusive);
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
}

TEST(Multicast, PredictedOwnerSnoopedDirectly)
{
    ProtoHarness h(mcConfig());
    h.access(5, 0x10000, true);
    prime(h, 1, 5);
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(out.servicedBy, CoreSet{5});
    EXPECT_TRUE(out.predSufficient);
    EXPECT_EQ(mc(h)->insufficientMasks(), 0u);
    h.sys->checkCoherence();
}

TEST(Multicast, WrongMaskFallsBackViaHome)
{
    ProtoHarness h(mcConfig());
    h.access(5, 0x10000, true);
    prime(h, 1, 9); // Snoops only core 9; the home snoops core 5.
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(out.servicedBy, CoreSet{5});
    EXPECT_FALSE(out.predSufficient);
    EXPECT_EQ(mc(h)->insufficientMasks(), 1u);
    h.sys->checkCoherence();
}

TEST(Multicast, WriteInvalidatesBeyondMask)
{
    ProtoHarness h(mcConfig());
    h.access(5, 0x10000, false);
    h.access(6, 0x10000, false);
    h.access(7, 0x10000, false);
    prime(h, 1, 5); // Mask covers one of three sharers.
    AccessOutcome out = h.access(1, 0x10000, true);
    EXPECT_TRUE(out.communicating);
    for (CoreId c : {5u, 6u, 7u})
        EXPECT_EQ(h.l2State(c, 0x10000), Mesif::invalid);
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::modified);
    EXPECT_FALSE(out.predSufficient);
    h.sys->checkCoherence();
}

TEST(Multicast, EmptyPredictionDegradesToBroadcast)
{
    ProtoHarness h(mcConfig());
    h.access(5, 0x10000, true);
    // No priming: full broadcast fallback still services the miss.
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(out.servicedBy, CoreSet{5});
    h.sys->checkCoherence();
}

TEST(Multicast, SavesBandwidthVsBroadcast)
{
    std::uint64_t bc_bytes = 0, mc_bytes = 0;
    {
        Config cfg = ProtoHarness::smallConfig();
        cfg.protocol = Protocol::broadcast;
        ProtoHarness h(cfg);
        h.access(5, 0x10000, true);
        h.access(1, 0x10000, false);
        bc_bytes = h.mesh->stats().flitBytes.value();
    }
    {
        ProtoHarness h(mcConfig());
        h.access(5, 0x10000, true);
        prime(h, 1, 5);
        h.access(1, 0x10000, false);
        mc_bytes = h.mesh->stats().flitBytes.value();
    }
    // The first (cold, unpredicted) write falls back to a full
    // broadcast in both schemes; the predicted read is where the
    // multicast saves: ~14 fewer request+response pairs.
    EXPECT_LT(mc_bytes, 3 * bc_bytes / 4);
}

TEST(Multicast, ConcurrentWritersStayCoherent)
{
    ProtoHarness h(mcConfig());
    h.access(5, 0x10000, true);
    for (CoreId c = 0; c < 8; ++c)
        if (c != 5)
            prime(h, c, 5);
    std::vector<std::tuple<CoreId, Addr, bool>> reqs;
    for (CoreId c = 0; c < 8; ++c)
        reqs.emplace_back(c, Addr{0x10000}, true);
    h.accessAll(reqs);
    unsigned owners = 0;
    for (CoreId c = 0; c < 16; ++c)
        owners += h.l2State(c, 0x10000) == Mesif::modified;
    EXPECT_EQ(owners, 1u);
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
}

TEST(Multicast, WorkloadEndToEnd)
{
    ExperimentConfig cfg;
    cfg.config.protocol = Protocol::multicast;
    cfg.config.predictor = PredictorKind::sp;
    cfg.scale = 0.25;
    ExperimentResult r = runExperiment("ocean", cfg);
    EXPECT_GT(r.run.ticks, 0u);
    EXPECT_GT(r.run.mem.communicatingMisses.value(), 0u);
    EXPECT_GT(r.run.mem.predictionsAttempted.value(), 0u);
}

TEST(Multicast, WorkloadBandwidthBetweenDirAndBroadcast)
{
    auto run = [](Protocol proto, PredictorKind kind) {
        ExperimentConfig cfg;
        cfg.config.protocol = proto;
        cfg.config.predictor = kind;
        cfg.scale = 0.5;
        return runExperiment("streamcluster", cfg);
    };
    ExperimentResult dir = run(Protocol::directory,
                               PredictorKind::none);
    ExperimentResult bc = run(Protocol::broadcast,
                              PredictorKind::none);
    ExperimentResult mcast = run(Protocol::multicast,
                                 PredictorKind::sp);
    EXPECT_LT(mcast.run.noc.flitBytes.value(),
              bc.run.noc.flitBytes.value());
    EXPECT_GT(mcast.run.noc.flitBytes.value(),
              dir.run.noc.flitBytes.value());
    // And it keeps snooping's latency advantage.
    EXPECT_LT(mcast.avgMissLatency(), dir.avgMissLatency());
}
