/**
 * @file
 * Targeted protocol race scenarios: upgrade/write races, reads
 * crossing in-flight writebacks, predicted requests racing active
 * transactions, and message-name coverage.
 */

#include <gtest/gtest.h>

#include "coherence/messages.hh"
#include "harness.hh"

using namespace spp;
using namespace spp::test;

TEST(Races, UpgradeVsWriteOnSharedLine)
{
    // Both cores hold the line Shared, both upgrade concurrently:
    // exactly one wins first, the loser re-fetches data, both writes
    // serialize with distinct versions.
    ProtoHarness h;
    h.access(0, 0x10000, false);
    h.access(1, 0x10000, false);
    auto outs = h.accessAll({{0, 0x10000, true}, {1, 0x10000, true}});
    EXPECT_NE(outs[0].dataVersion, outs[1].dataVersion);
    unsigned owners = 0;
    for (CoreId c = 0; c < 16; ++c)
        owners += h.l2State(c, 0x10000) == Mesif::modified;
    EXPECT_EQ(owners, 1u);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(Races, ReadVsWriteInterleave)
{
    ProtoHarness h;
    h.access(0, 0x10000, true);
    // Writer and three readers race on the same line.
    auto outs = h.accessAll({{1, 0x10000, false},
                             {2, 0x10000, true},
                             {3, 0x10000, false},
                             {4, 0x10000, false}});
    for (const auto &out : outs)
        EXPECT_TRUE(out.communicating);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(Races, ReadCrossesEviction)
{
    // Core 0's dirty line is being evicted (writeback in flight)
    // while core 1 reads it; the writeback buffer must service or
    // the memory path must deliver the committed version.
    Config cfg = ProtoHarness::smallConfig();
    cfg.l2Bytes = 8 * 1024;
    cfg.l2Assoc = 1;
    cfg.l1Bytes = 1024;
    ProtoHarness h(cfg);
    const unsigned sets = cfg.l2Bytes / cfg.lineBytes;
    const Addr a = 0x10000;
    const Addr conflict = a + static_cast<Addr>(sets) * cfg.lineBytes;

    AccessOutcome w = h.access(0, a, true);
    // Concurrently: core 0 touches the conflicting line (evicting a)
    // while core 1 reads a.
    auto outs = h.accessAll({{0, conflict, false},
                             {1, Addr{a}, false}});
    EXPECT_EQ(outs[1].dataVersion, w.dataVersion);
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(Races, EvictorReacquiresOwnWritebackLine)
{
    // A core re-references a line it just evicted: the access stalls
    // on the writeback buffer and then refetches cleanly.
    Config cfg = ProtoHarness::smallConfig();
    cfg.l2Bytes = 8 * 1024;
    cfg.l2Assoc = 1;
    cfg.l1Bytes = 1024;
    ProtoHarness h(cfg);
    const unsigned sets = cfg.l2Bytes / cfg.lineBytes;
    const Addr a = 0x10000;
    const Addr conflict = a + static_cast<Addr>(sets) * cfg.lineBytes;

    AccessOutcome w = h.access(0, a, true);
    // Both in flight from the same core is impossible (in-order), so
    // force the tight sequence: evict then immediately re-access.
    std::vector<AccessOutcome> outs(2);
    h.sys->access(0, conflict, false, 0x1,
                  [&](const AccessOutcome &o) {
                      outs[0] = o;
                      h.sys->access(0, a, false, 0x2,
                                    [&](const AccessOutcome &oo) {
                                        outs[1] = oo;
                                    });
                  });
    h.eq.run();
    EXPECT_EQ(outs[1].dataVersion, w.dataVersion);
    EXPECT_TRUE(outs[1].miss());
    h.sys->checkCoherence();
}

TEST(Races, PredictedRequestDuringActiveTransaction)
{
    // Core 1 predicts the owner while core 2's write transaction on
    // the same line is in flight: the predicted request must Nack or
    // resolve consistently; no deadlock, coherent end state.
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = Protocol::predicted;
    cfg.predictor = PredictorKind::sp;
    ProtoHarness h(cfg);
    h.access(5, 0x10000, true);

    // Prime both cores 1 and 2 towards core 5.
    for (CoreId c : {1u, 2u}) {
        SyncPointInfo info;
        info.type = SyncType::barrier;
        info.staticId = 0x70;
        PredictionQuery q;
        q.core = c;
        h.sp->onSyncPoint(c, info);
        for (int i = 0; i < 20; ++i) {
            h.sp->trainResponse(q, CoreSet{5});
            h.sp->feedback(c, Prediction{}, true, false);
        }
        h.sp->onSyncPoint(c, info);
    }

    auto outs = h.accessAll({{2, 0x10000, true},
                             {1, 0x10000, false}});
    EXPECT_TRUE(h.sys->drained());
    for (const auto &out : outs)
        EXPECT_TRUE(out.communicating);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(Races, ManyLinesManyCoresChurn)
{
    // Dense conflict churn over a handful of lines, repeated so that
    // queued transactions, upgrades-turned-misses and writebacks all
    // interleave.
    Config cfg = ProtoHarness::smallConfig();
    cfg.l2Bytes = 8 * 1024;
    cfg.l2Assoc = 1;
    cfg.l1Bytes = 1024;
    ProtoHarness h(cfg);
    for (unsigned round = 0; round < 20; ++round) {
        std::vector<std::tuple<CoreId, Addr, bool>> reqs;
        for (CoreId c = 0; c < 16; ++c) {
            const Addr line = 0x10000 +
                ((c + round) % 4) * cfg.lineBytes;
            reqs.emplace_back(c, line, (c + round) % 3 == 0);
        }
        h.accessAll(reqs);
        ASSERT_TRUE(h.sys->drained()) << "round " << round;
    }
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(Messages, NamesCoverAllTypes)
{
    for (int i = 0; i <= static_cast<int>(MsgType::cancel); ++i) {
        EXPECT_STRNE(toString(static_cast<MsgType>(i)), "?")
            << "missing name for MsgType " << i;
    }
    EXPECT_STREQ(toString(MsgType::predFailed), "predFailed");
    EXPECT_STREQ(toString(MsgType::wbAck), "wbAck");
}
