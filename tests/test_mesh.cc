/**
 * @file
 * Unit tests for the mesh NoC model.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "event/event_queue.hh"
#include "mem/address_map.hh"
#include "noc/mesh.hh"

using namespace spp;

namespace {

struct MeshFixture : ::testing::Test
{
    Config cfg;
    EventQueue eq;
    Mesh mesh{cfg, eq};
};

} // namespace

TEST_F(MeshFixture, HopsAreManhattanDistance)
{
    // 4x4 mesh: tile = y * 4 + x.
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    EXPECT_EQ(mesh.hops(0, 12), 3u);
    EXPECT_EQ(mesh.hops(0, 15), 6u);
    EXPECT_EQ(mesh.hops(5, 10), 2u);
    EXPECT_EQ(mesh.hops(10, 5), 2u);
}

TEST_F(MeshFixture, ZeroLoadLatency)
{
    // router 2 + hops * (link 1 + router 2) + serialization.
    const Tick one_hop_ctrl = mesh.zeroLoadLatency(1, 8);
    EXPECT_EQ(one_hop_ctrl, 2u + 3u + 1u);
    const Tick data = mesh.zeroLoadLatency(2, 72);
    EXPECT_EQ(data, 2u + 6u + 5u); // ceil(72/16) = 5.
    EXPECT_EQ(mesh.zeroLoadLatency(0, 72), 2u); // Local: router only.
}

TEST_F(MeshFixture, DeliveryAtExpectedTick)
{
    Tick delivered = 0;
    Packet p{0, 3, 8, TrafficClass::request};
    mesh.send(p, [&] { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered, mesh.zeroLoadLatency(3, 8));
}

TEST_F(MeshFixture, LocalDelivery)
{
    Tick delivered = 0;
    mesh.send(Packet{5, 5, 8, TrafficClass::request},
              [&] { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered, cfg.routerLatency);
}

TEST_F(MeshFixture, BytesAccounting)
{
    mesh.send(Packet{0, 1, 8, TrafficClass::request}, [] {});
    mesh.send(Packet{0, 2, 72, TrafficClass::data}, [] {});
    eq.run();
    EXPECT_EQ(mesh.stats().packets.value(), 2u);
    EXPECT_EQ(mesh.stats().flitBytes.value(), 80u);
    EXPECT_EQ(mesh.stats().byteHops.value(), 8u * 1 + 72u * 2);
    EXPECT_EQ(mesh.stats().byteRouters.value(), 8u * 2 + 72u * 3);
    EXPECT_EQ(mesh.stats().bytesOf(TrafficClass::request), 8u);
    EXPECT_EQ(mesh.stats().bytesOf(TrafficClass::data), 72u);
}

TEST_F(MeshFixture, ContentionDelaysSecondPacket)
{
    // Two large packets on the same path: the second head waits.
    Tick t1 = 0, t2 = 0;
    mesh.send(Packet{0, 3, 72, TrafficClass::data},
              [&] { t1 = eq.curTick(); });
    mesh.send(Packet{0, 3, 72, TrafficClass::data},
              [&] { t2 = eq.curTick(); });
    eq.run();
    EXPECT_GT(t2, t1);
}

TEST_F(MeshFixture, SameRouteIsFifo)
{
    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
        mesh.send(Packet{0, 15, 8, TrafficClass::request},
                  [&order, i] { order.push_back(i); });
    }
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(MeshNoContention, ZeroLoadWhenDisabled)
{
    Config cfg;
    cfg.modelContention = false;
    EventQueue eq;
    Mesh mesh(cfg, eq);
    Tick t1 = 0, t2 = 0;
    mesh.send(Packet{0, 3, 72, TrafficClass::data},
              [&] { t1 = eq.curTick(); });
    mesh.send(Packet{0, 3, 72, TrafficClass::data},
              [&] { t2 = eq.curTick(); });
    eq.run();
    EXPECT_EQ(t1, t2); // No queueing in the zero-load model.
}

TEST(MeshLatencySample, RecordsLatencies)
{
    Config cfg;
    EventQueue eq;
    Mesh mesh(cfg, eq);
    mesh.send(Packet{0, 15, 8, TrafficClass::request}, [] {});
    eq.run();
    EXPECT_EQ(mesh.stats().packetLatency.count(), 1u);
    EXPECT_GT(mesh.stats().packetLatency.mean(), 0.0);
}

TEST(MeshRectangular, RoutesAndHomesStayInRange)
{
    // 4x2 mesh: tile = y * 4 + x; nothing may assume a square grid.
    Config cfg;
    cfg.numCores = 8;
    cfg.meshX = 4;
    cfg.meshY = 2;
    cfg.validate();
    EventQueue eq;
    Mesh mesh(cfg, eq);

    EXPECT_EQ(mesh.hops(0, 7), 4u);  // (0,0) -> (3,1).
    EXPECT_EQ(mesh.hops(3, 4), 4u);  // (3,0) -> (0,1).
    EXPECT_EQ(mesh.hops(2, 6), 1u);  // Straight down one row.

    // Contention routing walks linkIndex across every hop; an idle
    // mesh must agree with the zero-load latency.
    Tick delivered = 0;
    mesh.send(Packet{0, 7, 8, TrafficClass::request},
              [&] { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered, mesh.zeroLoadLatency(4, 8));

    AddressMap map(cfg);
    for (Addr a = 0; a < 64 * cfg.lineBytes; a += cfg.lineBytes)
        EXPECT_LT(map.homeNode(a), cfg.numCores);
}

TEST(MeshRectangular, TallMeshDelivers)
{
    // 2x8: more rows than columns.
    Config cfg;
    cfg.numCores = 16;
    cfg.meshX = 2;
    cfg.meshY = 8;
    cfg.validate();
    EventQueue eq;
    Mesh mesh(cfg, eq);
    EXPECT_EQ(mesh.hops(0, 15), 8u); // (0,0) -> (1,7).
    Tick delivered = 0;
    mesh.send(Packet{15, 0, 72, TrafficClass::data},
              [&] { delivered = eq.curTick(); });
    eq.run();
    EXPECT_EQ(delivered, mesh.zeroLoadLatency(8, 72));
}
