/**
 * @file
 * Unit tests for the Martin-style group predictors (ADDR/INST/UNI):
 * train-up counters, periodic train-down, thresholding, indexing and
 * the capacity-limited table.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "predict/group_predictor.hh"

using namespace spp;

namespace {

PredictionQuery
query(CoreId core, Addr macro, Pc pc, bool write = false)
{
    PredictionQuery q;
    q.core = core;
    q.line = macro << 8;
    q.macroBlock = macro;
    q.pc = pc;
    q.isWrite = write;
    return q;
}

} // namespace

TEST(GroupEntry, TrainUpToThreshold)
{
    GroupEntry e(16);
    EXPECT_TRUE(e.predict(2).empty());
    e.train(CoreSet{4}, 1000);
    EXPECT_TRUE(e.predict(2).empty()); // Counter 1 < threshold 2.
    e.train(CoreSet{4}, 1000);
    EXPECT_EQ(e.predict(2), CoreSet{4});
}

TEST(GroupEntry, CounterSaturates)
{
    GroupEntry e(16);
    for (int i = 0; i < 10; ++i)
        e.train(CoreSet{4}, 1000);
    EXPECT_EQ(e.counter(4), GroupEntry::counterMax);
}

TEST(GroupEntry, TrainDownDecaysInactive)
{
    GroupEntry e(16);
    e.train(CoreSet{4}, 4);
    e.train(CoreSet{4}, 4);
    e.train(CoreSet{4}, 4);
    ASSERT_EQ(e.predict(2), CoreSet{4});
    // Keep training a different core; the rollover (period 4) will
    // decay core 4 out.
    for (int i = 0; i < 12; ++i)
        e.train(CoreSet{9}, 4);
    EXPECT_FALSE(e.predict(2).test(4));
    EXPECT_TRUE(e.predict(2).test(9));
}

TEST(GroupTable, UnlimitedGrows)
{
    GroupTable t(0, 16);
    for (std::uint64_t k = 0; k < 100; ++k)
        t.entry(k);
    EXPECT_EQ(t.size(), 100u);
}

TEST(GroupTable, CapacityEvictsLru)
{
    GroupTable t(2, 16);
    t.entry(1).train(CoreSet{1}, 1000);
    t.entry(2).train(CoreSet{2}, 1000);
    t.entry(1); // Touch 1: key 2 becomes LRU.
    t.entry(3); // Evicts key 2.
    EXPECT_NE(t.peek(1), nullptr);
    EXPECT_EQ(t.peek(2), nullptr);
    EXPECT_NE(t.peek(3), nullptr);
    EXPECT_EQ(t.size(), 2u);
}

TEST(GroupTable, PeekDoesNotAllocate)
{
    GroupTable t(0, 16);
    EXPECT_EQ(t.peek(7), nullptr);
    EXPECT_EQ(t.size(), 0u);
}

namespace {

struct GroupPredFixture : ::testing::Test
{
    Config cfg;
};

} // namespace

TEST_F(GroupPredFixture, AddrIndexesByMacroBlock)
{
    GroupPredictor p(cfg, 16, GroupIndex::macroBlock);
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    p.trainResponse(query(0, 0x10, 0xbb), CoreSet{5}); // Other PC.
    // Same macroblock, any PC -> prediction.
    EXPECT_EQ(p.predict(query(0, 0x10, 0xcc)).targets, CoreSet{5});
    // Different macroblock -> nothing.
    EXPECT_FALSE(p.predict(query(0, 0x11, 0xaa)).valid());
}

TEST_F(GroupPredFixture, InstIndexesByPc)
{
    GroupPredictor p(cfg, 16, GroupIndex::instruction);
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    p.trainResponse(query(0, 0x20, 0xaa), CoreSet{5}); // Other block.
    EXPECT_EQ(p.predict(query(0, 0x30, 0xaa)).targets, CoreSet{5});
    EXPECT_FALSE(p.predict(query(0, 0x10, 0xbb)).valid());
}

TEST_F(GroupPredFixture, UniIgnoresIndex)
{
    GroupPredictor p(cfg, 16, GroupIndex::none);
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    p.trainResponse(query(0, 0x99, 0xbb), CoreSet{5});
    EXPECT_EQ(p.predict(query(0, 0x77, 0xcc)).targets, CoreSet{5});
}

TEST_F(GroupPredFixture, PerCoreTables)
{
    GroupPredictor p(cfg, 16, GroupIndex::macroBlock);
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    EXPECT_TRUE(p.predict(query(0, 0x10, 0xaa)).valid());
    EXPECT_FALSE(p.predict(query(1, 0x10, 0xaa)).valid());
}

TEST_F(GroupPredFixture, ExternalRequestsTrain)
{
    GroupPredictor p(cfg, 16, GroupIndex::macroBlock);
    // Core 3 observes two external requests from core 8 on block
    // 0x10: core 8 becomes a predicted target for core 3.
    p.trainExternal(3, 0x1000, 0x10, 0xaa, 8, true);
    p.trainExternal(3, 0x1000, 0x10, 0xaa, 8, false);
    EXPECT_EQ(p.predict(query(3, 0x10, 0xaa)).targets, CoreSet{8});
}

TEST_F(GroupPredFixture, SelfExcluded)
{
    GroupPredictor p(cfg, 16, GroupIndex::none);
    p.trainResponse(query(2, 0x10, 0xaa), CoreSet{2, 7});
    p.trainResponse(query(2, 0x10, 0xaa), CoreSet{2, 7});
    Prediction pred = p.predict(query(2, 0x10, 0xaa));
    ASSERT_TRUE(pred.valid());
    EXPECT_FALSE(pred.targets.test(2));
}

TEST_F(GroupPredFixture, SourceIsTable)
{
    GroupPredictor p(cfg, 16, GroupIndex::none);
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    EXPECT_EQ(p.predict(query(0, 0x10, 0xaa)).source,
              PredSource::table);
}

TEST_F(GroupPredFixture, StorageTracksEntries)
{
    GroupPredictor p(cfg, 16, GroupIndex::macroBlock);
    const auto empty_bits = p.storageBits();
    p.trainResponse(query(0, 0x10, 0xaa), CoreSet{5});
    p.trainResponse(query(0, 0x20, 0xaa), CoreSet{5});
    // 2 entries x 37 bits for a 16-core machine.
    EXPECT_EQ(p.storageBits() - empty_bits, 2u * 37u);
    EXPECT_GT(p.tableAccesses(), 0u);
}

TEST_F(GroupPredFixture, CapacityLimitForgetting)
{
    cfg.predictorEntries = 4;
    GroupPredictor p(cfg, 16, GroupIndex::macroBlock);
    p.trainResponse(query(0, 0x1, 0xaa), CoreSet{5});
    p.trainResponse(query(0, 0x1, 0xaa), CoreSet{5});
    EXPECT_TRUE(p.predict(query(0, 0x1, 0xaa)).valid());
    // Touch four other blocks: block 1 falls out of the table.
    for (Addr m = 2; m <= 5; ++m)
        p.trainResponse(query(0, m, 0xaa), CoreSet{5});
    EXPECT_FALSE(p.predict(query(0, 0x1, 0xaa)).valid());
}
