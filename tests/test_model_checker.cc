/**
 * @file
 * Model-checker tests: exploration determinism, state-hash pruning,
 * exhaustive detection of every injected protocol bug (with a
 * replayable minimal schedule), 2-core witnesses for both late-data
 * race windows, and the schedule-file round trip.
 */

#include <gtest/gtest.h>

#include "check/model_checker.hh"

namespace spp {
namespace {

ModelCheckOptions
base(Protocol p, const char *workload)
{
    ModelCheckOptions o;
    o.protocol = p;
    o.cores = 2;
    o.workload = workload;
    // Bound runaway searches so a regression fails fast instead of
    // hanging the suite; passing runs stay well under the cap.
    o.maxExecutions = 20000;
    return o;
}

TEST(ModelChecker, ExplorationIsDeterministic)
{
    const ModelCheckOptions o = base(Protocol::directory, "conflict");
    const ModelCheckResult a = modelCheck(o);
    const ModelCheckResult b = modelCheck(o);
    EXPECT_EQ(a.executions, b.executions);
    EXPECT_EQ(a.choicePoints, b.choicePoints);
    EXPECT_EQ(a.statesHashed, b.statesHashed);
    EXPECT_EQ(a.statesPruned, b.statesPruned);
    EXPECT_EQ(a.branchesReduced, b.branchesReduced);
    EXPECT_EQ(a.violationFound, b.violationFound);
    EXPECT_EQ(a.schedule, b.schedule);
}

TEST(ModelChecker, CleanProtocolHasNoReachableViolation)
{
    for (Protocol p : {Protocol::directory, Protocol::predicted,
                       Protocol::broadcast, Protocol::multicast}) {
        const ModelCheckResult r = modelCheck(base(p, "conflict"));
        EXPECT_FALSE(r.violationFound)
            << toString(p) << ": " << (r.violations.empty()
                ? std::string("(status)")
                : r.violations.front().detail);
        EXPECT_TRUE(r.complete()) << toString(p);
        EXPECT_GT(r.executions, 1u) << toString(p);
        EXPECT_GT(r.choicePoints, 0u) << toString(p);
    }
}

TEST(ModelChecker, SharerFormatsAllExplored)
{
    for (SharerFormat f : {SharerFormat::full, SharerFormat::coarse,
                           SharerFormat::limited}) {
        ModelCheckOptions o = base(Protocol::directory, "conflict");
        o.format = f;
        const ModelCheckResult r = modelCheck(o);
        EXPECT_FALSE(r.violationFound) << toString(f);
        EXPECT_TRUE(r.complete()) << toString(f);
    }
}

TEST(ModelChecker, PruningCutsExecutionsAndPreservesVerdict)
{
    ModelCheckOptions o = base(Protocol::directory, "conflict");
    const ModelCheckResult pruned = modelCheck(o);
    o.prune = false;
    const ModelCheckResult full = modelCheck(o);

    EXPECT_FALSE(pruned.violationFound);
    EXPECT_FALSE(full.violationFound);
    EXPECT_GT(pruned.statesHashed, 0u);
    EXPECT_GT(pruned.statesPruned, 0u);
    EXPECT_LT(pruned.executions, full.executions);
}

TEST(ModelChecker, ReductionCutsBranches)
{
    ModelCheckOptions o = base(Protocol::directory, "conflict");
    const ModelCheckResult reduced = modelCheck(o);
    EXPECT_GT(reduced.branchesReduced, 0u);
}

/** Every injected bug must be caught by exhaustive search, and the
 * minimized schedule must replay to the same failure. */
void
expectInjectCaught(unsigned bug, const char *workload)
{
    ModelCheckOptions o = base(Protocol::directory, workload);
    o.injectBug = bug;
    const ModelCheckResult r = modelCheck(o);
    ASSERT_TRUE(r.violationFound)
        << "inject " << bug << " (" << workload << ") not caught";

    const ModelCheckResult replay = replaySchedule(o, r.schedule);
    EXPECT_TRUE(replay.violationFound)
        << "inject " << bug << ": minimized schedule did not replay";
    if (r.failStatus == RunStatus::ok) {
        ASSERT_FALSE(r.violations.empty());
        ASSERT_FALSE(replay.violations.empty());
        EXPECT_EQ(r.violations.front().rule,
                  replay.violations.front().rule);
    } else {
        EXPECT_EQ(replay.failStatus, r.failStatus);
    }
}

TEST(ModelChecker, CatchesInjectedLostInvalidation)
{
    expectInjectCaught(1, "conflict");
}

TEST(ModelChecker, CatchesInjectedStaleMemoryData)
{
    expectInjectCaught(2, "writeback");
}

TEST(ModelChecker, CatchesInjectedDroppedUnblock)
{
    expectInjectCaught(3, "pingpong");
}

TEST(ModelChecker, BroadcastLateDataWindowIsReached)
{
    // The speculative-memory-fetch vs. owner-response race: some
    // explored ordering must make the memory data arrive after the
    // transaction retired (counted, benignly dropped) — and no
    // ordering may violate an invariant. Needs requester, owner and
    // home on three distinct cores, hence cores = 3.
    ModelCheckOptions o = base(Protocol::broadcast, "race");
    o.cores = 3;
    const ModelCheckResult r = modelCheck(o);
    EXPECT_FALSE(r.violationFound);
    EXPECT_GT(r.lateDataDrops, 0u);
}

TEST(ModelChecker, MulticastLateDataWindowIsReached)
{
    // The evicted-owner window: the wb buffer answers a snoop while
    // home memory data is in flight. Like the broadcast race it
    // needs a reader/evictor/home triangle (cores = 3), and the
    // reader's single read must be phase-tuned into the few-tick
    // in-flight-writeback window — sweep raceDelay around the
    // default so timing drift shifts, not breaks, this witness.
    std::uint64_t drops = 0;
    for (unsigned delay = 150; delay <= 200; delay += 5) {
        ModelCheckOptions o = base(Protocol::multicast, "wbrace");
        o.cores = 3;
        o.raceDelay = delay;
        const ModelCheckResult r = modelCheck(o);
        EXPECT_FALSE(r.violationFound) << "delay " << delay;
        drops += r.lateDataDrops;
    }
    EXPECT_GT(drops, 0u);
}

TEST(ModelChecker, ScheduleTextRoundTrips)
{
    ModelCheckOptions o = base(Protocol::multicast, "writeback");
    o.format = SharerFormat::limited;
    o.injectBug = 2;
    const std::vector<unsigned> sched = {1, 0, 2, 1};

    const std::string text = scheduleToText(o, sched);
    ModelCheckOptions parsed;
    std::vector<unsigned> parsed_sched;
    std::string err;
    ASSERT_TRUE(scheduleFromText(text, parsed, parsed_sched, &err))
        << err;
    EXPECT_EQ(parsed.protocol, o.protocol);
    EXPECT_EQ(parsed.format, o.format);
    EXPECT_EQ(parsed.cores, o.cores);
    EXPECT_EQ(parsed.workload, o.workload);
    EXPECT_EQ(parsed.injectBug, o.injectBug);
    EXPECT_EQ(parsed_sched, sched);
}

TEST(ModelChecker, ScheduleTextRejectsMalformedInput)
{
    ModelCheckOptions o;
    std::vector<unsigned> sched;
    std::string err;
    EXPECT_FALSE(scheduleFromText("", o, sched, &err));
    EXPECT_FALSE(scheduleFromText(
        "# spp model_check schedule v1\nprotocol nope\nchoices\n",
        o, sched, &err));
    EXPECT_FALSE(scheduleFromText(
        "# spp model_check schedule v1\nchoices 1 x 2\n",
        o, sched, &err));
    // Missing the choices line entirely.
    EXPECT_FALSE(scheduleFromText(
        "# spp model_check schedule v1\nprotocol directory\n",
        o, sched, &err));
    EXPECT_FALSE(err.empty());
}

TEST(ModelChecker, DepthBoundIsReportedAsIncomplete)
{
    ModelCheckOptions o = base(Protocol::directory, "conflict");
    o.maxDepth = 1;
    const ModelCheckResult r = modelCheck(o);
    EXPECT_TRUE(r.hitDepthLimit);
    EXPECT_FALSE(r.complete());
}

TEST(ModelChecker, ConfigIsTinyAndContentionFree)
{
    const ModelCheckOptions o = base(Protocol::directory, "conflict");
    Config cfg = modelCheckConfig(o);
    EXPECT_EQ(cfg.numCores, 2u);
    EXPECT_FALSE(cfg.modelContention);
    cfg.validate(); // fatal()s (kills the test) if inconsistent

}

} // namespace
} // namespace spp
