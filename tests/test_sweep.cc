/**
 * @file
 * Determinism and parallel-equivalence tests for the sweep engine:
 * the same (workload, config, seed) must produce bit-identical
 * statistics run-to-run, and a sweep must return element-wise
 * identical results whether executed on one thread or many.
 */

#include <gtest/gtest.h>

#include "analysis/sweep.hh"
#include "common/logging.hh"

using namespace spp;

namespace {

struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

ExperimentConfig
smallConfig(Protocol proto, PredictorKind kind,
            std::uint64_t seed = 1)
{
    ExperimentConfig cfg;
    cfg.config.protocol = proto;
    cfg.config.predictor = kind;
    cfg.scale = 0.3;
    cfg.config.seed = seed;
    return cfg;
}

/** The stats a figure/table could print, flattened for comparison. */
struct KeyStats
{
    Tick ticks;
    std::uint64_t misses;
    std::uint64_t commMisses;
    std::uint64_t sufficient;
    std::uint64_t flitBytes;
    std::uint64_t events;
    double missLatencyMean;
    double energy;
    std::size_t storageBits;

    bool
    operator==(const KeyStats &o) const = default;
};

KeyStats
keyStats(const ExperimentResult &r)
{
    KeyStats k;
    k.ticks = r.run.ticks;
    k.misses = r.run.mem.misses.value();
    k.commMisses = r.run.mem.communicatingMisses.value();
    k.sufficient = r.run.mem.predictionsSufficient.value();
    k.flitBytes = r.run.noc.flitBytes.value();
    k.events = r.run.eventsExecuted;
    k.missLatencyMean = r.run.mem.missLatency.mean();
    k.energy = r.energy;
    k.storageBits = r.run.predictorStorageBits;
    return k;
}

std::vector<SweepJob>
sampleJobs()
{
    return {
        {"fft", smallConfig(Protocol::directory,
                            PredictorKind::none), ""},
        {"x264", smallConfig(Protocol::predicted,
                             PredictorKind::sp), ""},
        {"fft", smallConfig(Protocol::broadcast,
                            PredictorKind::none), ""},
        {"dedup", smallConfig(Protocol::predicted,
                              PredictorKind::addr), ""},
    };
}

} // namespace

TEST(Determinism, SameSeedSameStats)
{
    QuietScope quiet;
    const ExperimentConfig cfg =
        smallConfig(Protocol::predicted, PredictorKind::sp);
    const ExperimentResult a = runExperiment("x264", cfg);
    const ExperimentResult b = runExperiment("x264", cfg);
    EXPECT_GT(a.run.mem.misses.value(), 0u);
    EXPECT_EQ(keyStats(a), keyStats(b));
}

TEST(Determinism, DifferentSeedsDiffer)
{
    QuietScope quiet;
    const ExperimentResult a = runExperiment(
        "x264", smallConfig(Protocol::predicted,
                            PredictorKind::sp, 1));
    const ExperimentResult b = runExperiment(
        "x264", smallConfig(Protocol::predicted,
                            PredictorKind::sp, 99));
    EXPECT_NE(keyStats(a), keyStats(b));
}

TEST(Sweep, ResultsInJobOrder)
{
    QuietScope quiet;
    const std::vector<SweepJob> jobs = sampleJobs();
    const auto swept = runSweep(jobs, 1);
    ASSERT_EQ(swept.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ExperimentResult direct =
            runExperiment(jobs[i].workload, jobs[i].config);
        EXPECT_EQ(keyStats(swept[i]), keyStats(direct))
            << "job " << i << " (" << jobs[i].workload << ")";
    }
}

TEST(Sweep, ParallelMatchesSequential)
{
    QuietScope quiet;
    const std::vector<SweepJob> jobs = sampleJobs();
    const auto seq = runSweep(jobs, 1);
    const auto par = runSweep(jobs, 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(keyStats(seq[i]), keyStats(par[i]))
            << "job " << i << " (" << jobs[i].workload << ")";
    }
}

TEST(Sweep, OversubscribedPoolMatchesSequential)
{
    QuietScope quiet;
    // More threads than jobs: the runner must clamp and still land
    // every result at its job's index.
    const std::vector<SweepJob> jobs = sampleJobs();
    const auto seq = runSweep(jobs, 1);
    const auto par = runSweep(jobs, 16);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(keyStats(seq[i]), keyStats(par[i]));
}

TEST(Sweep, EmptyJobListIsFine)
{
    QuietScope quiet;
    EXPECT_TRUE(runSweep({}, 4).empty());
}

TEST(Sweep, CollectsTracesPerJob)
{
    QuietScope quiet;
    // Traced jobs run concurrently; each trace must see only its own
    // run's events.
    ExperimentConfig traced =
        smallConfig(Protocol::directory, PredictorKind::none);
    traced.collectTrace = true;
    const std::vector<SweepJob> jobs = {
        {"fft", traced, ""}, {"x264", traced, ""},
        {"fft", traced, ""},
    };
    const auto par = runSweep(jobs, 3);
    ASSERT_TRUE(par[0].trace && par[1].trace && par[2].trace);
    EXPECT_EQ(par[0].trace->totalMisses(),
              par[2].trace->totalMisses());
    EXPECT_EQ(par[0].trace->totalMisses(),
              par[0].run.mem.misses.value());
    EXPECT_EQ(par[1].trace->totalMisses(),
              par[1].run.mem.misses.value());
}

TEST(SweepRunner, DefaultJobsIsPositive)
{
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
    EXPECT_GE(SweepRunner(0).threads(), 1u);
    EXPECT_EQ(SweepRunner(7).threads(), 7u);
}
