/**
 * @file
 * Unit tests for the common utilities: strfmt, Rng, stats, Config
 * validation.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/config.hh"
#include "common/format.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace spp;

// --- strfmt ---

TEST(Format, Basic)
{
    EXPECT_EQ(strfmt("a {} c {}", 1, "x"), "a 1 c x");
}

TEST(Format, NoArgs)
{
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Format, EscapedBrace)
{
    EXPECT_EQ(strfmt("{{}} {}", 7), "{} 7");
}

TEST(Format, SurplusArgs)
{
    EXPECT_EQ(strfmt("x", 1, 2), "x 1 2");
}

TEST(Format, SurplusPlaceholders)
{
    EXPECT_EQ(strfmt("{} {}", 1), "1 {}");
}

// --- Rng ---

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10 && !differ; ++i)
        differ = a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // All values hit.
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, BurstBounded)
{
    Rng r(19);
    for (int i = 0; i < 200; ++i) {
        const unsigned b = r.burst(0.9, 8);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, 8u);
    }
}

// --- Stats ---

TEST(Stats, Counter)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, CounterExchange)
{
    Counter c;
    c += 7;
    EXPECT_EQ(c.exchange(), 7u); // Returns the old value...
    EXPECT_EQ(c.value(), 0u);    // ...and clears by default.
    c += 2;
    EXPECT_EQ(c.exchange(10), 2u);
    EXPECT_EQ(c.value(), 10u);
}

TEST(Stats, Average)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(9);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
}

TEST(Stats, Distribution)
{
    Distribution d(4, 10.0);
    d.sample(5);
    d.sample(15);
    d.sample(100); // Clamps into the last bucket.
    EXPECT_EQ(d.counts()[0], 1u);
    EXPECT_EQ(d.counts()[1], 1u);
    EXPECT_EQ(d.counts()[3], 1u);
    EXPECT_EQ(d.summary().count(), 3u);
}

TEST(Stats, GroupDump)
{
    StatGroup g("grp");
    Counter c;
    c += 3;
    Average a;
    a.sample(2.0);
    g.regCounter("hits", c);
    g.regAverage("lat", a);
    std::ostringstream os;
    g.dump(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("grp.hits 3"), std::string::npos);
    EXPECT_NE(s.find("grp.lat.mean 2"), std::string::npos);
}

TEST(Stats, GroupDumpIsSortedByName)
{
    StatGroup g("grp");
    Counter c1, c2;
    Average a1, a2;
    // Register out of order: the dump must not depend on it.
    g.regCounter("zeta", c1);
    g.regCounter("alpha", c2);
    g.regAverage("omega", a1);
    g.regAverage("beta", a2);
    std::ostringstream os;
    g.dump(os);
    const std::string s = os.str();
    // Counters first (sorted), then averages (sorted).
    const auto alpha = s.find("grp.alpha");
    const auto zeta = s.find("grp.zeta");
    const auto beta = s.find("grp.beta");
    const auto omega = s.find("grp.omega");
    ASSERT_NE(alpha, std::string::npos);
    ASSERT_NE(zeta, std::string::npos);
    ASSERT_NE(beta, std::string::npos);
    ASSERT_NE(omega, std::string::npos);
    EXPECT_LT(alpha, zeta);
    EXPECT_LT(zeta, beta);
    EXPECT_LT(beta, omega);

    // Identical registration sets dump identically regardless of
    // registration order.
    StatGroup g2("grp");
    g2.regAverage("beta", a2);
    g2.regAverage("omega", a1);
    g2.regCounter("alpha", c2);
    g2.regCounter("zeta", c1);
    std::ostringstream os2;
    g2.dump(os2);
    EXPECT_EQ(s, os2.str());
}

// --- Config ---

TEST(Config, DefaultsValidate)
{
    Config cfg;
    cfg.validate(); // Must not fatal.
    EXPECT_EQ(cfg.numCores, 16u);
    EXPECT_EQ(cfg.meshX * cfg.meshY, cfg.numCores);
}

TEST(Config, DeathOnBadMesh)
{
    Config cfg;
    cfg.numCores = 12; // 4x4 mesh no longer covers it.
    EXPECT_DEATH({ cfg.validate(); }, "mesh");
}

TEST(Config, DeathOnBadLineSize)
{
    Config cfg;
    cfg.lineBytes = 48;
    EXPECT_DEATH({ cfg.validate(); }, "power of two");
}

TEST(Config, DeathOnPredictedWithoutPredictor)
{
    Config cfg;
    cfg.protocol = Protocol::predicted;
    cfg.predictor = PredictorKind::none;
    EXPECT_DEATH({ cfg.validate(); }, "predictor");
}

TEST(Config, ProtocolNames)
{
    EXPECT_STREQ(toString(Protocol::directory), "directory");
    EXPECT_STREQ(toString(Protocol::broadcast), "broadcast");
    EXPECT_STREQ(toString(Protocol::predicted), "predicted");
    EXPECT_STREQ(toString(PredictorKind::sp), "sp");
    EXPECT_STREQ(toString(PredictorKind::addr), "addr");
}

TEST(Config, CleanSharedFillFollowsFState)
{
    Config cfg;
    EXPECT_EQ(cfg.cleanSharedFill(), Mesif::forwarding);
    cfg.enableFState = false;
    EXPECT_EQ(cfg.cleanSharedFill(), Mesif::shared);
}

TEST(Config, DeathOnBadDram)
{
    Config cfg;
    cfg.enableDram = true;
    cfg.dramBanks = 0;
    EXPECT_DEATH({ cfg.validate(); }, "DRAM");
}

TEST(Config, DeathOnBadFilterRegion)
{
    Config cfg;
    cfg.filterRegionBytes = 48;
    EXPECT_DEATH({ cfg.validate(); }, "filterRegionBytes");
}

TEST(Config, MulticastNeedsPredictor)
{
    Config cfg;
    cfg.protocol = Protocol::multicast;
    EXPECT_DEATH({ cfg.validate(); }, "requires a predictor");
    EXPECT_STREQ(toString(Protocol::multicast), "multicast");
}

// --- configDescribe / configHash field coverage ---

namespace {

// Produce a value different from the field's default, whatever its
// type.
void bumpField(bool &v) { v = !v; }
void bumpField(double &v) { v += 0.25; }
void
bumpField(Protocol &v)
{
    v = v == Protocol::broadcast ? Protocol::directory
                                 : Protocol::broadcast;
}
void
bumpField(PredictorKind &v)
{
    v = v == PredictorKind::sp ? PredictorKind::none
                               : PredictorKind::sp;
}
void
bumpField(SharerFormat &v)
{
    v = v == SharerFormat::coarse ? SharerFormat::full
                                  : SharerFormat::coarse;
}
template <typename T> void bumpField(T &v) { v += 1; }

} // namespace

TEST(Config, DescribeCoversEveryField)
{
    const Config base;
    const std::string base_desc = configDescribe(base);
    const std::uint64_t base_hash = configHash(base);
    // Every field appears by name, and changing any single field
    // changes both the description and the hash.
#define SPP_CHECK_FIELD(f)                                            \
    {                                                                 \
        EXPECT_NE(base_desc.find(#f "="), std::string::npos) << #f;   \
        Config c;                                                     \
        bumpField(c.f);                                               \
        EXPECT_NE(configDescribe(c), base_desc) << #f;                \
        EXPECT_NE(configHash(c), base_hash) << #f;                    \
    }
    SPP_CONFIG_FIELDS(SPP_CHECK_FIELD)
#undef SPP_CHECK_FIELD
}
