/**
 * @file
 * Unit tests for the per-line transaction lock table.
 */

#include <gtest/gtest.h>

#include "coherence/line_lock.hh"

using namespace spp;

TEST(LineLock, AcquireFree)
{
    LineLockTable t;
    EXPECT_FALSE(t.isLocked(0x100));
    EXPECT_TRUE(t.acquireOrQueue(0x100, {1, 10}, [] {}));
    EXPECT_TRUE(t.isLocked(0x100));
    EXPECT_EQ(t.lockedLines(), 1u);
}

TEST(LineLock, ReacquireBySameKey)
{
    LineLockTable t;
    EXPECT_TRUE(t.acquireOrQueue(0x100, {1, 10}, [] {}));
    EXPECT_TRUE(t.acquireOrQueue(0x100, {1, 10}, [] {}));
    EXPECT_TRUE(t.tryAcquire(0x100, {1, 10}));
}

TEST(LineLock, QueueAndHandoff)
{
    LineLockTable t;
    bool resumed = false;
    EXPECT_TRUE(t.acquireOrQueue(0x100, {1, 10}, [] {}));
    EXPECT_FALSE(
        t.acquireOrQueue(0x100, {2, 20}, [&] { resumed = true; }));
    EXPECT_FALSE(resumed);
    t.release(0x100, {1, 10});
    EXPECT_TRUE(resumed); // Handoff runs synchronously.
    EXPECT_TRUE(t.isLocked(0x100));
    EXPECT_TRUE(t.tryAcquire(0x100, {2, 20})); // Now held by 2/20.
    t.release(0x100, {2, 20});
    EXPECT_FALSE(t.isLocked(0x100));
}

TEST(LineLock, FifoHandoffOrder)
{
    LineLockTable t;
    std::vector<int> order;
    t.acquireOrQueue(0x100, {0, 1}, [] {});
    t.acquireOrQueue(0x100, {1, 2}, [&] { order.push_back(1); });
    t.acquireOrQueue(0x100, {2, 3}, [&] { order.push_back(2); });
    t.release(0x100, {0, 1});
    t.release(0x100, {1, 2});
    t.release(0x100, {2, 3});
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(LineLock, TryAcquireBusy)
{
    LineLockTable t;
    t.acquireOrQueue(0x100, {1, 10}, [] {});
    EXPECT_FALSE(t.tryAcquire(0x100, {2, 20}));
    EXPECT_TRUE(t.isLockedByOther(0x100, TxnKey{2, 20}));
    EXPECT_FALSE(t.isLockedByOther(0x100, TxnKey{1, 10}));
}

TEST(LineLock, IndependentLines)
{
    LineLockTable t;
    EXPECT_TRUE(t.acquireOrQueue(0x100, {1, 10}, [] {}));
    EXPECT_TRUE(t.acquireOrQueue(0x200, {2, 20}, [] {}));
    EXPECT_EQ(t.lockedLines(), 2u);
}

TEST(LineLock, ReleaseUnheldPanics)
{
    LineLockTable t;
    EXPECT_DEATH({ t.release(0x100, {1, 10}); }, "release");
    t.acquireOrQueue(0x100, {1, 10}, [] {});
    EXPECT_DEATH({ t.release(0x100, {2, 20}); }, "release");
}
