/**
 * @file
 * Unit tests for the region sharing filter's construction contract
 * and storage model (the behavioural filtering tests live in
 * test_extensions.cc alongside the other Section 5.3 extension
 * tests).
 */

#include <gtest/gtest.h>

#include "common/types.hh"
#include "predict/sharing_filter.hh"

using namespace spp;

TEST(SharingFilter, RejectsNonPowerOfTwoRegions)
{
    EXPECT_DEATH(SharingFilter(16, 3000), "power of");
    EXPECT_DEATH(SharingFilter(16, 0), "power of");
    EXPECT_DEATH(SharingFilter(16, 4096 + 64), "power of");
}

TEST(SharingFilter, AcceptsPowerOfTwoRegions)
{
    for (unsigned bytes : {64u, 256u, 4096u, 1u << 20}) {
        SharingFilter f(4, bytes);
        EXPECT_EQ(f.sharedRegions(0), 0u);
    }
}

TEST(SharingFilter, TagWidthFollowsRegionGeometry)
{
    // 4 KB regions: 12 offset bits, so a tag is physAddrBits - 12.
    SharingFilter f4k(16, 4096);
    EXPECT_EQ(f4k.tagBits(), physAddrBits - 12);

    // 64 B regions: 6 offset bits.
    SharingFilter f64(16, 64);
    EXPECT_EQ(f64.tagBits(), physAddrBits - 6);
}

TEST(SharingFilter, StorageCountsTagsAcrossCores)
{
    SharingFilter f(16, 4096);
    EXPECT_EQ(f.storageBits(), 0u);
    f.markShared(0, 0x1000);
    f.markShared(0, 0x1040);   // Same region, no new tag.
    f.markShared(0, 0x20000);  // Second region at core 0.
    f.markShared(3, 0x1000);   // Same region number, other core.
    EXPECT_EQ(f.sharedRegions(0), 2u);
    EXPECT_EQ(f.sharedRegions(3), 1u);
    EXPECT_EQ(f.storageBits(), 3u * (physAddrBits - 12));
}

TEST(SharingFilter, RegionBucketingAtBoundaries)
{
    SharingFilter f(16, 4096);
    f.markShared(0, 0x1fff);
    EXPECT_TRUE(f.allowPrediction(0, 0x1000));
    EXPECT_TRUE(f.allowPrediction(0, 0x1fff));
    EXPECT_FALSE(f.allowPrediction(0, 0x2000));
    EXPECT_FALSE(f.allowPrediction(0, 0x0fff));
}
