/**
 * @file
 * Trace frontend tests: codec round-trip and strictness, store
 * keying, record-then-replay equivalence (both at the CmpSystem
 * level and through the experiment harness + on-disk store), and the
 * mcsim TraceGen import adapter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "sim/cmp_system.hh"
#include "trace/codec.hh"
#include "trace/format.hh"
#include "trace/mcsim.hh"
#include "trace/replay.hh"
#include "trace/store.hh"
#include "workload/workload.hh"

using namespace spp;

namespace {

struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

/** Fresh temp directory, removed on scope exit. */
struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const char *tag)
    {
        path = std::filesystem::temp_directory_path() /
            (std::string("spp_trace_test_") + tag);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

/** A pseudo-random trace exercising every op kind and delta sign. */
TraceData
randomTrace(unsigned n_threads, unsigned ops_per_thread,
            std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    TraceData t;
    t.meta.workload = "random";
    t.meta.numThreads = n_threads;
    t.meta.seed = seed;
    t.meta.lineBytes = 64;
    t.meta.scale = 0.625;
    t.meta.keyHash = rng();
    t.threads.resize(n_threads);
    for (auto &ops : t.threads) {
        for (unsigned i = 0; i < ops_per_thread; ++i) {
            const auto kind =
                static_cast<TraceOpKind>(rng() % traceOpKinds);
            TraceOp op;
            op.kind = kind;
            switch (kind) {
            case TraceOpKind::read:
            case TraceOpKind::write:
                // Mix small sequential-ish and huge 64-bit values so
                // zigzag deltas see both signs and all widths.
                op.addr = rng() % 2 ? rng() : rng() % 0x10000;
                op.pc = rng() % 2 ? rng() : rng() % 0x1000;
                break;
            case TraceOpKind::compute:
                op.arg = rng() % 2 ? rng() : rng() % 1000;
                break;
            default:
                // Sync ops: id in arg (except join) and call-site
                // sid in pc (except lock/unlock) — the fields the
                // format carries for each kind.
                if (kind != TraceOpKind::join)
                    op.arg = rng() % 64;
                if (kind != TraceOpKind::lock &&
                    kind != TraceOpKind::unlock)
                    op.pc = rng() % 0x1000;
                break;
            }
            ops.push_back(op);
        }
    }
    return t;
}

/** The counters a figure row would print, for run comparison. */
struct RunKey
{
    Tick ticks;
    std::uint64_t events;
    std::uint64_t misses;
    std::uint64_t commMisses;
    std::uint64_t flitBytes;

    bool operator==(const RunKey &o) const = default;
};

RunKey
keyOf(const RunResult &r)
{
    return {r.ticks, r.eventsExecuted, r.mem.misses.value(),
            r.mem.communicatingMisses.value(),
            r.noc.flitBytes.value()};
}

RunResult
liveRun(const char *workload, const Config &cfg, double scale,
        TraceRecorder *recorder = nullptr)
{
    const WorkloadSpec *spec = findWorkload(workload);
    EXPECT_NE(spec, nullptr) << workload;
    CmpSystem sys(cfg);
    if (recorder)
        sys.setTraceSink(recorder);
    WorkloadParams params;
    params.scale = scale;
    return sys.run([spec, params](ThreadContext &ctx) {
        return spec->run(ctx, params);
    });
}

RunResult
replayRun(std::shared_ptr<const TraceData> trace, const Config &cfg)
{
    CmpSystem sys(cfg);
    return sys.run(replayThreadFn(std::move(trace)));
}

Config
smallConfig(Protocol proto, PredictorKind kind)
{
    Config cfg;
    cfg.protocol = proto;
    cfg.predictor = kind;
    return cfg;
}

void
expectDecodeFails(const std::vector<std::uint8_t> &bytes,
                  const char *what)
{
    TraceData out;
    std::string err;
    EXPECT_FALSE(decodeTrace(bytes, out, err)) << what;
    EXPECT_FALSE(err.empty()) << what;
}

/** One synthetic 40-byte PTSInstrTrace record. */
void
appendRecord(std::vector<std::uint8_t> &bytes, std::uint64_t waddr,
             std::uint64_t raddr, std::uint64_t raddr2,
             std::uint64_t ip)
{
    const std::uint64_t words[4] = {waddr, raddr, raddr2, ip};
    for (const std::uint64_t w : words)
        for (int i = 0; i < 8; ++i)
            bytes.push_back(
                static_cast<std::uint8_t>(w >> (8 * i)));
    for (int i = 0; i < 8; ++i)   // category + tail padding
        bytes.push_back(0);
}

void
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(TraceCodec, RoundTripRandomStreams)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const TraceData t = randomTrace(4, 200, seed);
        const auto bytes = encodeTrace(t);
        TraceData back;
        std::string err;
        ASSERT_TRUE(decodeTrace(bytes, back, err)) << err;
        EXPECT_EQ(back.threads, t.threads);
        EXPECT_EQ(back.meta.workload, t.meta.workload);
        EXPECT_EQ(back.meta.numThreads, t.meta.numThreads);
        EXPECT_EQ(back.meta.seed, t.meta.seed);
        EXPECT_EQ(back.meta.lineBytes, t.meta.lineBytes);
        EXPECT_EQ(back.meta.scale, t.meta.scale);
        EXPECT_EQ(back.meta.keyHash, t.meta.keyHash);
    }
}

TEST(TraceCodec, RoundTripEmptyThreads)
{
    TraceData t;
    t.meta.workload = "empty";
    t.meta.numThreads = 3;
    t.threads.resize(3);
    const auto bytes = encodeTrace(t);
    TraceData back;
    std::string err;
    ASSERT_TRUE(decodeTrace(bytes, back, err)) << err;
    EXPECT_EQ(back.threads.size(), 3u);
    EXPECT_EQ(back.totalOps(), 0u);
}

TEST(TraceCodec, RejectsBadMagic)
{
    auto bytes = encodeTrace(randomTrace(2, 8, 7));
    bytes[0] = 'X';
    expectDecodeFails(bytes, "bad magic");
}

TEST(TraceCodec, RejectsVersionMismatch)
{
    auto bytes = encodeTrace(randomTrace(2, 8, 7));
    bytes[8] = static_cast<std::uint8_t>(traceFormatVersion + 1);
    expectDecodeFails(bytes, "future version");
}

TEST(TraceCodec, RejectsEmptyInput)
{
    expectDecodeFails({}, "empty file");
}

TEST(TraceCodec, RejectsTruncationAtEveryPrefix)
{
    const auto bytes = encodeTrace(randomTrace(2, 10, 11));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        TraceData out;
        std::string err;
        EXPECT_FALSE(decodeTrace(prefix, out, err))
            << "prefix of length " << len << " decoded";
    }
}

TEST(TraceCodec, RejectsTrailingGarbage)
{
    auto bytes = encodeTrace(randomTrace(2, 8, 13));
    bytes.push_back(0xab);
    expectDecodeFails(bytes, "trailing garbage");
}

TEST(TraceCodec, ChecksumCatchesBitFlips)
{
    const auto clean = encodeTrace(randomTrace(2, 20, 17));
    // Flip one byte at a spread of positions; the checksum (or an
    // earlier structural check) must reject every one.
    for (std::size_t pos = 0; pos < clean.size();
         pos += clean.size() / 13 + 1) {
        auto bytes = clean;
        bytes[pos] ^= 0x40;
        TraceData out;
        std::string err;
        EXPECT_FALSE(decodeTrace(bytes, out, err))
            << "flip at byte " << pos << " decoded";
    }
}

TEST(TraceCodec, AtomicWriteRoundTripsThroughFile)
{
    TempDir dir("codec_file");
    const TraceData t = randomTrace(3, 50, 23);
    const auto bytes = encodeTrace(t);
    const std::string path = dir.file("t.spptrace");
    std::string err;
    ASSERT_TRUE(writeFileBytesAtomic(path, bytes, err)) << err;
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(readFileBytes(path, back, err)) << err;
    EXPECT_EQ(back, bytes);
    const TraceData loaded = loadTraceOrFatal(path);
    EXPECT_EQ(loaded.threads, t.threads);
}

TEST(TraceStore, KeyDependsOnStreamShapingFieldsOnly)
{
    Config cfg;
    const std::uint64_t base = traceKeyHash("fft", cfg, 0.5);
    EXPECT_EQ(traceKeyHash("fft", cfg, 0.5), base);

    // Stream-shaping fields change the key...
    EXPECT_NE(traceKeyHash("ocean", cfg, 0.5), base);
    EXPECT_NE(traceKeyHash("fft", cfg, 0.7), base);
    Config seeded = cfg;
    seeded.seed = cfg.seed + 1;
    EXPECT_NE(traceKeyHash("fft", seeded, 0.5), base);
    Config wide = cfg;
    wide.numCores = 64;
    EXPECT_NE(traceKeyHash("fft", wide, 0.5), base);
    Config lines = cfg;
    lines.lineBytes = 32;
    EXPECT_NE(traceKeyHash("fft", lines, 0.5), base);

    // ...timing/protocol fields must not: one trace serves every
    // protocol/predictor/format cell of a sweep.
    Config proto = cfg;
    proto.protocol = Protocol::broadcast;
    EXPECT_EQ(traceKeyHash("fft", proto, 0.5), base);
    Config pred = cfg;
    pred.protocol = Protocol::predicted;
    pred.predictor = PredictorKind::sp;
    EXPECT_EQ(traceKeyHash("fft", pred, 0.5), base);
    Config fmt = cfg;
    fmt.sharerFormat = SharerFormat::coarse;
    EXPECT_EQ(traceKeyHash("fft", fmt, 0.5), base);
}

TEST(TraceStore, PathEmbedsWorkloadAndKey)
{
    const std::string p = tracePath("/tmp/traces", "fft",
                                    0x1234abcdu);
    EXPECT_NE(p.find("/tmp/traces/"), std::string::npos);
    EXPECT_NE(p.find("fft-"), std::string::npos);
    EXPECT_NE(p.find("1234abcd"), std::string::npos);
    EXPECT_NE(p.find(".spptrace"), std::string::npos);
}

TEST(TraceStore, ReplayErrorOnCoreCountMismatch)
{
    Config cfg;
    TraceData t;
    t.meta.numThreads = cfg.numCores;
    t.threads.resize(cfg.numCores);
    EXPECT_EQ(traceReplayError(t, cfg), "");
    Config wide = cfg;
    wide.numCores = 64;
    EXPECT_NE(traceReplayError(t, wide), "");
}

TEST(TraceReplay, MatchesLiveAcrossWorkloadsAndProtocols)
{
    QuietScope quiet;
    const double scale = 0.15;
    const Config protos[] = {
        smallConfig(Protocol::directory, PredictorKind::none),
        smallConfig(Protocol::predicted, PredictorKind::sp),
    };
    for (const char *wl : {"fft", "radix", "streamcluster"}) {
        // Record under the directory config; the op stream is
        // protocol-independent, so one trace drives both replays.
        TraceRecorder recorder(protos[0].numCores);
        const RunResult recorded =
            liveRun(wl, protos[0], scale, &recorder);
        recorder.data.meta = traceMetaFor(wl, protos[0], scale);
        auto trace = std::make_shared<const TraceData>(
            std::move(recorder.data));
        EXPECT_GT(trace->totalOps(), 0u) << wl;

        for (const Config &cfg : protos) {
            const RunResult live = liveRun(wl, cfg, scale);
            const RunResult replayed = replayRun(trace, cfg);
            EXPECT_EQ(keyOf(replayed), keyOf(live))
                << wl << " / " << toString(cfg.protocol);
        }
        // Recording itself must not perturb the simulation.
        EXPECT_EQ(keyOf(recorded),
                  keyOf(liveRun(wl, protos[0], scale)));
    }
}

TEST(TraceReplay, SurvivesCodecRoundTrip)
{
    QuietScope quiet;
    const Config cfg =
        smallConfig(Protocol::directory, PredictorKind::none);
    TraceRecorder recorder(cfg.numCores);
    liveRun("fft", cfg, 0.15, &recorder);
    recorder.data.meta = traceMetaFor("fft", cfg, 0.15);

    TraceData decoded;
    std::string err;
    ASSERT_TRUE(decodeTrace(encodeTrace(recorder.data), decoded,
                            err))
        << err;
    const RunResult a = replayRun(
        std::make_shared<const TraceData>(recorder.data), cfg);
    const RunResult b = replayRun(
        std::make_shared<const TraceData>(std::move(decoded)), cfg);
    EXPECT_EQ(keyOf(a), keyOf(b));
}

TEST(TraceExperiment, StoreRecordsThenReplays)
{
    QuietScope quiet;
    TempDir dir("store");
    ExperimentConfig cfg;
    cfg.config.protocol = Protocol::directory;
    cfg.scale = 0.15;
    cfg.trace.dir = dir.path.string();

    // First run records into the store...
    const ExperimentResult live = runExperiment("fft", cfg);
    const std::string path = tracePath(
        cfg.trace.dir, "fft",
        traceKeyHash("fft", cfg.config, cfg.scale));
    ASSERT_TRUE(traceFileExists(path)) << path;

    // ...second run replays from it, bit-identically.
    const ExperimentResult replayed = runExperiment("fft", cfg);
    EXPECT_EQ(keyOf(replayed.run), keyOf(live.run));

    // A different protocol cell reuses the same trace file.
    ExperimentConfig pred = cfg;
    pred.config.protocol = Protocol::predicted;
    pred.config.predictor = PredictorKind::sp;
    EXPECT_EQ(tracePath(pred.trace.dir, "fft",
                        traceKeyHash("fft", pred.config,
                                     pred.scale)),
              path);
    ExperimentConfig livePred = pred;
    livePred.trace = TraceOptions{};
    EXPECT_EQ(keyOf(runExperiment("fft", pred).run),
              keyOf(runExperiment("fft", livePred).run));

    // Explicit --replay of the stored file matches as well.
    ExperimentConfig explicitReplay = cfg;
    explicitReplay.trace = TraceOptions{};
    explicitReplay.trace.replayFile = path;
    EXPECT_EQ(keyOf(runExperiment("fft", explicitReplay).run),
              keyOf(live.run));
}

TEST(McsimImport, MapsAccessesAndCoalescesCompute)
{
    TempDir dir("mcsim");
    std::vector<std::uint8_t> bytes;
    appendRecord(bytes, 0, 0, 0, 0x400000);        // compute
    appendRecord(bytes, 0, 0, 0, 0x400001);        // compute
    appendRecord(bytes, 0x9000, 0x1000, 0x2000, 0x400002);
    appendRecord(bytes, 0, 0, 0, 0x400003);        // compute
    appendRecord(bytes, 0, 0x3000, 0, 0x400004);
    const std::string path = dir.file("t0.bin");
    writeBytes(path, bytes);

    TraceData out;
    std::string err;
    ASSERT_TRUE(importMcsimTrace({path}, 0, out, err)) << err;
    ASSERT_EQ(out.threads.size(), 1u);
    const std::vector<TraceOp> expect = {
        {TraceOpKind::compute, 0, 0, 2},
        {TraceOpKind::read, 0x1000, 0x400002, 0},
        {TraceOpKind::read, 0x2000, 0x400002, 0},
        {TraceOpKind::write, 0x9000, 0x400002, 0},
        {TraceOpKind::compute, 0, 0, 1},
        {TraceOpKind::read, 0x3000, 0x400004, 0},
    };
    EXPECT_EQ(out.threads[0], expect);
    EXPECT_EQ(out.meta.workload, "mcsim-import");
    EXPECT_EQ(out.meta.numThreads, 1u);
}

TEST(McsimImport, InjectsBalancedBarriers)
{
    TempDir dir("mcsim_sync");
    // Thread 0: four memory ops; thread 1: two. With sync_every=2
    // the shortest thread caps injection at one barrier, and both
    // threads must reach exactly one.
    std::vector<std::uint8_t> t0, t1;
    for (int i = 0; i < 4; ++i)
        appendRecord(t0, 0, 0x1000 + 64u * i, 0, 0x400000);
    for (int i = 0; i < 2; ++i)
        appendRecord(t1, 0x2000 + 64u * i, 0, 0, 0x400100);
    writeBytes(dir.file("t0.bin"), t0);
    writeBytes(dir.file("t1.bin"), t1);

    TraceData out;
    std::string err;
    ASSERT_TRUE(importMcsimTrace({dir.file("t0.bin"),
                                  dir.file("t1.bin")},
                                 2, out, err))
        << err;
    ASSERT_EQ(out.threads.size(), 2u);
    for (const auto &ops : out.threads) {
        unsigned barriers = 0;
        for (const TraceOp &op : ops)
            barriers += op.kind == TraceOpKind::barrier ? 1 : 0;
        EXPECT_EQ(barriers, 1u);
    }

    // The injected trace must actually run: 2 threads on a 2-core
    // machine, completing without deadlock.
    Config cfg;
    cfg.numCores = 2;
    cfg.meshX = 2;
    cfg.meshY = 1;
    cfg.coarseCoresPerBit = 2;
    EXPECT_EQ(traceReplayError(out, cfg), "");
    const RunResult run = replayRun(
        std::make_shared<const TraceData>(std::move(out)), cfg);
    EXPECT_GT(run.eventsExecuted, 0u);
    EXPECT_GT(run.ticks, 0u);
}

TEST(McsimImport, RejectsMalformedSizes)
{
    TempDir dir("mcsim_bad");
    std::vector<std::uint8_t> bytes(40 + 7, 0);  // not a multiple
    const std::string path = dir.file("bad.bin");
    writeBytes(path, bytes);
    TraceData out;
    std::string err;
    EXPECT_FALSE(importMcsimTrace({path}, 0, out, err));
    EXPECT_NE(err.find("40"), std::string::npos);

    EXPECT_FALSE(importMcsimTrace({}, 0, out, err));
    EXPECT_FALSE(importMcsimTrace({dir.file("missing.bin")}, 0, out,
                                  err));
}
