/**
 * @file
 * Prediction-extension protocol tests (Section 4.5): 2-hop predicted
 * reads and writes, Nack fallbacks, mispredictions serviced at
 * baseline latency, sufficiency accounting and race behaviour.
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace spp;
using namespace spp::test;

namespace {

/** Harness with the SP predictor attached. */
Config
spConfig()
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = Protocol::predicted;
    cfg.predictor = PredictorKind::sp;
    return cfg;
}

/** Prime core @p core's prediction register towards @p target. */
void
prime(ProtoHarness &h, CoreId core, CoreId target)
{
    SyncPointInfo info;
    info.type = SyncType::barrier;
    info.staticId = 0x50;
    PredictionQuery q;
    q.core = core;
    h.sp->onSyncPoint(core, info);
    for (int i = 0; i < 20; ++i) {
        h.sp->trainResponse(q, CoreSet::single(target));
        h.sp->feedback(core, Prediction{}, true, false);
    }
    h.sp->onSyncPoint(core, info); // Store signature.
    h.sp->onSyncPoint(core, info); // Form predictor from history.
    ASSERT_EQ(h.sp->predictorRegister(core), CoreSet::single(target));
}

} // namespace

TEST(PredProtocol, CorrectReadPredictionIsTwoHop)
{
    ProtoHarness h(spConfig());
    h.access(5, 0x10000, true); // M at core 5.
    prime(h, 1, 5);

    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_TRUE(out.pred.valid());
    EXPECT_TRUE(out.predSufficient);
    EXPECT_EQ(out.servicedBy, CoreSet{5});
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::forwarding);
    EXPECT_EQ(h.l2State(5, 0x10000), Mesif::shared);
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
    EXPECT_EQ(h.dir()->indirectionsAvoided(), 1u);
}

TEST(PredProtocol, CorrectPredictionIsFasterThanBaseline)
{
    // Same scenario with and without prediction; the predicted read
    // must complete in fewer cycles.
    Tick base_lat = 0, pred_lat = 0;
    {
        ProtoHarness h; // Plain directory.
        h.access(5, 0x10000, true);
        base_lat = h.access(1, 0x10000, false).latency();
    }
    {
        ProtoHarness h(spConfig());
        h.access(5, 0x10000, true);
        prime(h, 1, 5);
        pred_lat = h.access(1, 0x10000, false).latency();
    }
    EXPECT_LT(pred_lat, base_lat);
}

TEST(PredProtocol, WrongTargetNacksAndFallsBack)
{
    ProtoHarness h(spConfig());
    h.access(5, 0x10000, true); // Owner is 5...
    prime(h, 1, 9);             // ...but core 1 predicts 9.

    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_TRUE(out.pred.valid());
    EXPECT_FALSE(out.predSufficient);
    EXPECT_EQ(out.servicedBy, CoreSet{5}); // Directory path serviced.
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(PredProtocol, MispredictionLatencyNearBaseline)
{
    Tick base_lat = 0, mispred_lat = 0;
    {
        ProtoHarness h;
        h.access(5, 0x10000, true);
        base_lat = h.access(1, 0x10000, false).latency();
    }
    {
        ProtoHarness h(spConfig());
        h.access(5, 0x10000, true);
        prime(h, 1, 9); // Wrong target.
        mispred_lat = h.access(1, 0x10000, false).latency();
    }
    // The directory services the miss in parallel; a misprediction
    // costs at most a few cycles over the baseline.
    EXPECT_LE(mispred_lat, base_lat + 10);
}

TEST(PredProtocol, PredictedWriteInvalidatesDirectly)
{
    ProtoHarness h(spConfig());
    h.access(5, 0x10000, true);  // M at 5.
    h.access(6, 0x10000, false); // F at 6, S at 5.
    prime(h, 1, 5);
    // Predict both holders.
    {
        SyncPointInfo info;
        info.type = SyncType::barrier;
        info.staticId = 0x60;
        PredictionQuery q;
        q.core = 1;
        h.sp->onSyncPoint(1, info);
        for (int i = 0; i < 20; ++i) {
            h.sp->trainResponse(q, CoreSet{5, 6});
            h.sp->feedback(1, Prediction{}, true, false);
        }
        h.sp->onSyncPoint(1, info);
        h.sp->onSyncPoint(1, info);
    }
    ASSERT_EQ(h.sp->predictorRegister(1), (CoreSet{5, 6}));

    AccessOutcome out = h.access(1, 0x10000, true);
    EXPECT_TRUE(out.communicating);
    EXPECT_TRUE(out.predSufficient);
    EXPECT_TRUE(out.servicedBy.contains(CoreSet{5, 6}));
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::modified);
    EXPECT_EQ(h.l2State(5, 0x10000), Mesif::invalid);
    EXPECT_EQ(h.l2State(6, 0x10000), Mesif::invalid);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(PredProtocol, PartialWritePredictionInsufficient)
{
    ProtoHarness h(spConfig());
    h.access(5, 0x10000, false);
    h.access(6, 0x10000, false);
    h.access(7, 0x10000, false);
    prime(h, 1, 5); // Predicts only one of three sharers.

    AccessOutcome out = h.access(1, 0x10000, true);
    EXPECT_TRUE(out.communicating);
    EXPECT_FALSE(out.predSufficient); // Not a superset.
    for (CoreId c : {5u, 6u, 7u})
        EXPECT_EQ(h.l2State(c, 0x10000), Mesif::invalid);
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::modified);
    h.sys->checkCoherence();
}

TEST(PredProtocol, PredictionOnNonCommunicatingMissWastes)
{
    ProtoHarness h(spConfig());
    prime(h, 1, 9); // Predicts 9, but the line is uncached.
    AccessOutcome out = h.access(1, 0x30000, false);
    EXPECT_FALSE(out.communicating);
    EXPECT_TRUE(out.offChip);
    EXPECT_TRUE(out.pred.valid());
    EXPECT_FALSE(out.predSufficient);
    EXPECT_EQ(h.sys->stats().predictionsOnNonComm.value(), 1u);
    EXPECT_GT(h.sys->stats().predWasteBytesNonComm.value(), 0u);
}

TEST(PredProtocol, NoPredictionActsAsBaseline)
{
    ProtoHarness h(spConfig());
    h.access(5, 0x10000, true);
    // No priming: the register is empty, no prediction attempted.
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_FALSE(out.pred.valid());
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(h.sys->stats().predictionsAttempted.value(), 0u);
}

TEST(PredProtocol, ConcurrentPredictedReadersStaySane)
{
    ProtoHarness h(spConfig());
    h.access(5, 0x10000, true);
    for (CoreId c = 0; c < 16; ++c)
        if (c != 5)
            prime(h, c, 5);
    std::vector<std::tuple<CoreId, Addr, bool>> reqs;
    for (CoreId c = 0; c < 16; ++c)
        if (c != 5)
            reqs.emplace_back(c, Addr{0x10000}, false);
    auto outs = h.accessAll(reqs);
    for (const auto &out : outs)
        EXPECT_TRUE(out.communicating);
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(PredProtocol, ConcurrentPredictedWritersStaySane)
{
    ProtoHarness h(spConfig());
    h.access(5, 0x10000, true);
    for (CoreId c = 0; c < 8; ++c)
        if (c != 5)
            prime(h, c, 5);
    std::vector<std::tuple<CoreId, Addr, bool>> reqs;
    for (CoreId c = 0; c < 8; ++c)
        reqs.emplace_back(c, Addr{0x10000}, true);
    h.accessAll(reqs);
    unsigned owners = 0;
    for (CoreId c = 0; c < 16; ++c)
        owners += h.l2State(c, 0x10000) == Mesif::modified;
    EXPECT_EQ(owners, 1u);
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(PredProtocol, GroupPredictorIntegration)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = Protocol::predicted;
    cfg.predictor = PredictorKind::addr;
    ProtoHarness h(cfg);
    // Train by repetition: core 1 reads lines of the same macroblock
    // that core 5 keeps producing.
    for (int round = 0; round < 4; ++round) {
        const Addr a = 0x10000 + round * 64; // Same 256B macroblock?
        h.access(5, a, true);
        h.access(1, a, false);
    }
    // After two trainings the ADDR predictor fires on this block.
    EXPECT_GT(h.sys->stats().predictionsAttempted.value(), 0u);
    EXPECT_GT(h.sys->stats().predictionsSufficient.value(), 0u);
    h.sys->checkCoherence();
}
