/**
 * @file
 * Unit tests for the synchronization runtime: barriers, locks,
 * condition variables, semaphores, join and sync-point notification.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "event/event_queue.hh"
#include "sync/sync_manager.hh"

using namespace spp;

namespace {

struct Recorder : SyncListener
{
    struct Event
    {
        CoreId core;
        SyncPointInfo info;
    };
    std::vector<Event> events;

    void
    onSyncPoint(CoreId core, const SyncPointInfo &info) override
    {
        events.push_back({core, info});
    }

    unsigned
    countOf(SyncType t) const
    {
        unsigned n = 0;
        for (const auto &e : events)
            n += e.info.type == t;
        return n;
    }
};

struct SyncFixture : ::testing::Test
{
    Config cfg;
    EventQueue eq;
    SyncManager mgr{cfg, eq, 0};
    Recorder rec;

    SyncFixture() { mgr.addListener(&rec); }
};

} // namespace

TEST_F(SyncFixture, DistinctSyncVariableAddresses)
{
    std::set<Addr> addrs;
    for (unsigned i = 0; i < 8; ++i) {
        addrs.insert(mgr.barrierAddr(i));
        addrs.insert(mgr.barrierGenAddr(i));
        addrs.insert(mgr.lockAddr(i));
        addrs.insert(mgr.condAddr(i));
    }
    EXPECT_EQ(addrs.size(), 32u); // All distinct cache lines.
    EXPECT_EQ(mgr.barrierAddr(1) - mgr.barrierAddr(0), cfg.lineBytes);
}

TEST_F(SyncFixture, BarrierReleasesAllAtOnce)
{
    unsigned released = 0;
    for (CoreId c = 0; c < 4; ++c)
        mgr.barrierArrive(c, 0, 4, 0x99, [&] { ++released; });
    EXPECT_EQ(released, 0u); // Callbacks run via the event queue.
    eq.run();
    EXPECT_EQ(released, 4u);
    EXPECT_EQ(rec.countOf(SyncType::barrier), 4u);
    EXPECT_EQ(mgr.stats().barriersReleased.value(), 1u);
}

TEST_F(SyncFixture, BarrierNotReleasedEarly)
{
    unsigned released = 0;
    for (CoreId c = 0; c < 3; ++c)
        mgr.barrierArrive(c, 0, 4, 0x99, [&] { ++released; });
    eq.run();
    EXPECT_EQ(released, 0u);
    mgr.barrierArrive(3, 0, 4, 0x99, [&] { ++released; });
    eq.run();
    EXPECT_EQ(released, 4u);
}

TEST_F(SyncFixture, BarrierReusableAcrossInstances)
{
    for (int round = 0; round < 3; ++round) {
        unsigned released = 0;
        for (CoreId c = 0; c < 2; ++c)
            mgr.barrierArrive(c, 5, 2, 0x99, [&] { ++released; });
        eq.run();
        EXPECT_EQ(released, 2u);
    }
    // Dynamic IDs advanced per core per static ID.
    EXPECT_EQ(rec.events.back().info.dynamicId, 2u);
}

TEST_F(SyncFixture, LockGrantAndQueue)
{
    bool a = false, b = false;
    mgr.lockAcquire(1, 0, [&] { a = true; });
    eq.run();
    EXPECT_TRUE(a);
    mgr.lockAcquire(2, 0, [&] { b = true; });
    eq.run();
    EXPECT_FALSE(b); // Queued behind core 1.
    EXPECT_EQ(mgr.stats().lockContended.value(), 1u);
    mgr.lockRelease(1, 0);
    eq.run();
    EXPECT_TRUE(b);
    EXPECT_EQ(mgr.lastReleaser(0), 1u);
}

TEST_F(SyncFixture, LockSyncPointCarriesPrevHolder)
{
    mgr.lockAcquire(1, 0, [] {});
    eq.run();
    mgr.lockRelease(1, 0);
    mgr.lockAcquire(2, 0, [] {});
    eq.run();
    // Find the lock sync-point at core 2.
    bool found = false;
    for (const auto &e : rec.events) {
        if (e.core == 2 && e.info.type == SyncType::lock) {
            EXPECT_EQ(e.info.prevHolder, 1u);
            EXPECT_EQ(e.info.staticId, mgr.lockAddr(0));
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(SyncFixture, UnlockFiresUnlockSyncPoint)
{
    mgr.lockAcquire(1, 0, [] {});
    eq.run();
    mgr.lockRelease(1, 0);
    EXPECT_EQ(rec.countOf(SyncType::unlock), 1u);
}

TEST_F(SyncFixture, ReleaseUnheldLockPanics)
{
    EXPECT_DEATH({ mgr.lockRelease(3, 7); }, "released lock");
}

TEST_F(SyncFixture, CondSignalWakesOne)
{
    unsigned woken = 0;
    mgr.condWait(1, 0, 0x10, [&] { ++woken; });
    mgr.condWait(2, 0, 0x10, [&] { ++woken; });
    mgr.condSignal(3, 0, 0x11);
    eq.run();
    EXPECT_EQ(woken, 1u);
    mgr.condSignal(3, 0, 0x11);
    eq.run();
    EXPECT_EQ(woken, 2u);
}

TEST_F(SyncFixture, CondBroadcastWakesAll)
{
    unsigned woken = 0;
    for (CoreId c = 1; c <= 3; ++c)
        mgr.condWait(c, 0, 0x10, [&] { ++woken; });
    mgr.condBroadcast(0, 0, 0x11);
    eq.run();
    EXPECT_EQ(woken, 3u);
    EXPECT_EQ(rec.countOf(SyncType::broadcastWake), 4u);
}

TEST_F(SyncFixture, SignalWithNoWaiterIsLost)
{
    mgr.condSignal(0, 0, 0x11);
    unsigned woken = 0;
    mgr.condWait(1, 0, 0x10, [&] { ++woken; });
    eq.run();
    EXPECT_EQ(woken, 0u); // Condvars lose signals (unlike sems).
}

TEST_F(SyncFixture, SemaphoreBanksTokens)
{
    mgr.semPost(0, 0, 0x20);
    mgr.semPost(0, 0, 0x20);
    unsigned woken = 0;
    mgr.semWait(1, 0, 0x21, [&] { ++woken; });
    mgr.semWait(2, 0, 0x21, [&] { ++woken; });
    mgr.semWait(3, 0, 0x21, [&] { ++woken; });
    eq.run();
    EXPECT_EQ(woken, 2u); // Two banked tokens consumed.
    mgr.semPost(0, 0, 0x20);
    eq.run();
    EXPECT_EQ(woken, 3u);
}

TEST_F(SyncFixture, JoinWaitsForAllOthers)
{
    bool joined = false;
    mgr.joinAll(0, 0x30, [&] { joined = true; });
    for (CoreId c = 1; c < cfg.numCores; ++c) {
        EXPECT_FALSE(joined);
        mgr.threadDone(c);
        eq.run();
    }
    EXPECT_TRUE(joined);
    EXPECT_EQ(rec.countOf(SyncType::join), 1u);
}

TEST_F(SyncFixture, JoinAfterAllDoneIsImmediate)
{
    for (CoreId c = 1; c < cfg.numCores; ++c)
        mgr.threadDone(c);
    bool joined = false;
    mgr.joinAll(0, 0x30, [&] { joined = true; });
    eq.run();
    EXPECT_TRUE(joined);
}

TEST_F(SyncFixture, DynamicIdsCountPerCoreAndStaticId)
{
    mgr.notify(0, SyncType::barrier, 7);
    mgr.notify(0, SyncType::barrier, 7);
    mgr.notify(0, SyncType::barrier, 8);
    mgr.notify(1, SyncType::barrier, 7);
    ASSERT_EQ(rec.events.size(), 4u);
    EXPECT_EQ(rec.events[0].info.dynamicId, 0u);
    EXPECT_EQ(rec.events[1].info.dynamicId, 1u);
    EXPECT_EQ(rec.events[2].info.dynamicId, 0u); // New static ID.
    EXPECT_EQ(rec.events[3].info.dynamicId, 0u); // New core.
}
