/**
 * @file
 * Attribution profiler tests: classification accounting against the
 * simulator's own counters, observational inertness (a profiled run
 * is event-for-event identical to an unobserved one), deterministic
 * artifacts across repeated runs, and exact totals under top-K
 * eviction pressure.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/attribution.hh"
#include "analysis/experiment.hh"
#include "common/logging.hh"

using namespace spp;

namespace fs = std::filesystem;

namespace {

struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

/** Fresh, empty scratch directory under the system temp dir. */
std::string
scratchDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() /
        ("spp_test_attribution_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** A small predicted-protocol run that actually mispredicts. */
ExperimentConfig
baseConfig()
{
    ExperimentConfig cfg;
    cfg.config.numCores = 8;
    cfg.config.meshX = 4;
    cfg.config.meshY = 2;
    cfg.config.protocol = Protocol::predicted;
    cfg.config.predictor = PredictorKind::sp;
    cfg.scale = 0.05;
    return cfg;
}

ExperimentResult
runWithAttribution(const std::string &dir, unsigned top_k = 256)
{
    ExperimentConfig cfg = baseConfig();
    cfg.attribution.dir = dir;
    cfg.attribution.topK = top_k;
    return runExperiment("radiosity", cfg);
}

} // namespace

TEST(Attribution, ClassificationMatchesSimulatorCounters)
{
    QuietScope quiet;
    const std::string dir = scratchDir("classify");
    ExperimentResult res = runWithAttribution(dir);
    ASSERT_NE(res.attribution, nullptr);
    const AttributionProfiler &prof = *res.attribution;
    const auto &t = prof.totals();

    // Every resolved miss is classified exactly once.
    EXPECT_EQ(t.decisions(), res.run.mem.misses.value());
    // Non-"unpredicted" decisions are exactly the attempted
    // predictions, and the charged waste matches the simulator's own
    // waste counters.
    EXPECT_EQ(t.decisions() - t.unpredicted,
              res.run.mem.predictionsAttempted.value());
    EXPECT_EQ(t.wastedBytes,
              res.run.mem.predWasteBytesComm.value() +
                  res.run.mem.predWasteBytesNonComm.value());
    // Attached from tick 0, the profiler sees every NoC injection.
    EXPECT_EQ(t.messages, res.run.noc.packets.value());
    EXPECT_EQ(t.nocBytes, res.run.noc.flitBytes.value());
    // This workload/protocol must exercise all classes.
    EXPECT_GT(t.correct + t.over + t.under, 0u);
    EXPECT_GT(t.unpredicted, 0u);
}

TEST(Attribution, ObservationalInertness)
{
    QuietScope quiet;
    const std::string dir = scratchDir("inert");
    ExperimentResult plain = runExperiment("radiosity", baseConfig());
    ExperimentResult attr = runWithAttribution(dir);
    // Attribution never perturbs the simulation.
    EXPECT_EQ(plain.run.ticks, attr.run.ticks);
    EXPECT_EQ(plain.run.eventsExecuted, attr.run.eventsExecuted);
    EXPECT_EQ(plain.run.mem.misses.value(),
              attr.run.mem.misses.value());
    EXPECT_EQ(plain.attribution, nullptr);
}

TEST(Attribution, DeterministicArtifacts)
{
    QuietScope quiet;
    const std::string dir_a = scratchDir("det_a");
    const std::string dir_b = scratchDir("det_b");
    runWithAttribution(dir_a);
    runWithAttribution(dir_b);
    const std::string json_a =
        slurp(dir_a + "/radiosity.attribution.json");
    const std::string json_b =
        slurp(dir_b + "/radiosity.attribution.json");
    EXPECT_FALSE(json_a.empty());
    EXPECT_EQ(json_a, json_b);
    EXPECT_EQ(slurp(dir_a + "/radiosity.attribution.txt"),
              slurp(dir_b + "/radiosity.attribution.txt"));
    EXPECT_NE(json_a.find("\"schema\": \"spp.attribution.v1\""),
              std::string::npos);
}

TEST(Attribution, TopKEvictionKeepsTotalsExact)
{
    QuietScope quiet;
    const std::string dir_big = scratchDir("topk_big");
    const std::string dir_small = scratchDir("topk_small");
    ExperimentResult big = runWithAttribution(dir_big, 4096);
    ExperimentResult small = runWithAttribution(dir_small, 4);

    // The tiny store must have spilled (compaction triggers at
    // 9 * topK live keys)...
    EXPECT_LE(small.attribution->entries(), 36u);
    EXPECT_GT(small.attribution->evictions(), 0u);
    // ...yet totals are exact: identical to the unevicted run.
    const auto &tb = big.attribution->totals();
    const auto &ts = small.attribution->totals();
    EXPECT_EQ(tb.decisions(), ts.decisions());
    EXPECT_EQ(tb.wastedBytes, ts.wastedBytes);
    EXPECT_EQ(tb.nocBytes, ts.nocBytes);
    EXPECT_EQ(tb.messages, ts.messages);
    EXPECT_EQ(tb.underLatencyTicks, ts.underLatencyTicks);

    // Folded tail + surviving entries still account for everything.
    AttributionProfiler::Cell acc = small.attribution->evictedCell();
    for (const auto &e : small.attribution->sortedEntries())
        acc.fold(e.second);
    EXPECT_EQ(acc.decisions(), ts.decisions());
    EXPECT_EQ(acc.nocBytes, ts.nocBytes);

    // Eviction is deterministic: repeating the tiny-K run reproduces
    // the artifact byte-for-byte.
    const std::string dir_again = scratchDir("topk_again");
    runWithAttribution(dir_again, 4);
    EXPECT_EQ(slurp(dir_small + "/radiosity.attribution.json"),
              slurp(dir_again + "/radiosity.attribution.json"));
}

TEST(Attribution, TextReportListsTopEntries)
{
    QuietScope quiet;
    const std::string dir = scratchDir("report");
    ExperimentResult res = runWithAttribution(dir);
    const std::string report = res.attribution->textReport(5);
    EXPECT_NE(report.find("rank"), std::string::npos);
    EXPECT_NE(report.find("wasted B"), std::string::npos);
    // topN caps the table: header + summary + at most 5 data rows.
    std::size_t rows = 0;
    for (char c : report)
        rows += c == '\n';
    EXPECT_LE(rows, 12u);
}

TEST(Attribution, OptionsFromEnvValidation)
{
    AttributionOptions defaults = AttributionOptions::fromEnv();
    EXPECT_FALSE(defaults.enabled());
    EXPECT_EQ(defaults.topK, 256u);
    EXPECT_EQ(defaults.regionBytes, 4096u);
}
