/**
 * @file
 * Result-store and sweep-server tests: codec round-trip fidelity,
 * cold-miss -> populate -> warm-hit byte identity (at any worker
 * count), key invalidation on config/scale/git changes, corrupt and
 * mismatched entries rejected and re-simulated, cacheability
 * bypasses, and the server's newline-delimited JSON protocol parsed
 * back event by event.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/sweep.hh"
#include "common/config.hh"
#include "common/content_store.hh"
#include "common/logging.hh"
#include "service/result_codec.hh"
#include "service/result_store.hh"
#include "service/server.hh"
#include "service/triage.hh"
#include "telemetry/json.hh"

using namespace spp;

namespace {

struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

/** Fresh temp directory, removed on scope exit. */
struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const char *tag)
    {
        path = std::filesystem::temp_directory_path() /
            (std::string("spp_result_store_test_") + tag);
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string str() const { return path.string(); }
};

/** A fast cell: paper config, tiny iteration scale. */
ExperimentConfig
smallCell()
{
    ExperimentConfig x;
    x.scale = 0.05;
    return x;
}

/** Canonical byte rendering of a result (what the store writes). */
std::string
render(const ExperimentResult &res)
{
    return resultToJson(res).dump();
}

std::string
entryPathFor(const std::string &dir, const std::string &workload,
             const ExperimentConfig &x, const std::string &git)
{
    const ContentKey key =
        resultKey(workload, x.config, x.scale, x.collectTrace,
                  x.recordMissTargets, git);
    return resultPath(dir, workload, key.hash());
}

} // namespace

TEST(ResultCodec, RoundTripsFullResultWithTrace)
{
    QuietScope quiet;
    ExperimentConfig x = smallCell();
    x.collectTrace = true;
    x.recordMissTargets = true;
    const ExperimentResult live = runExperiment("ocean", x);
    ASSERT_NE(live.trace, nullptr);

    const Json doc = resultToJson(live);
    ExperimentResult back;
    std::string err;
    ASSERT_TRUE(resultFromJson(doc, back, err)) << err;
    EXPECT_EQ(render(back), render(live));
    ASSERT_NE(back.trace, nullptr);
    EXPECT_EQ(back.trace->totalMisses(), live.trace->totalMisses());
}

TEST(ResultCodec, RejectsMalformedDocuments)
{
    ExperimentResult out;
    std::string err;
    EXPECT_FALSE(resultFromJson(Json("not an object"), out, err));
    EXPECT_FALSE(resultFromJson(Json::object(), out, err));
    EXPECT_FALSE(err.empty());
}

TEST(ResultStore, ColdMissThenWarmHitIsByteIdentical)
{
    QuietScope quiet;
    TempDir dir("warm");
    ExperimentConfig x = smallCell();
    x.resultStore.dir = dir.str();

    resultStoreStats().reset();
    const ExperimentResult cold = runExperiment("ocean", x);
    EXPECT_EQ(resultStoreStats().misses, 1u);
    EXPECT_EQ(resultStoreStats().hits, 0u);

    const ExperimentResult warm = runExperiment("ocean", x);
    EXPECT_EQ(resultStoreStats().hits, 1u);
    EXPECT_EQ(render(warm), render(cold));
}

TEST(ResultStore, WarmSweepIsByteIdenticalAtAnyJobCount)
{
    QuietScope quiet;
    TempDir dir("jobs");
    std::vector<SweepJob> jobs;
    for (const char *workload : {"ocean", "fmm"}) {
        for (const Protocol proto :
             {Protocol::directory, Protocol::broadcast}) {
            ExperimentConfig x = smallCell();
            x.config.protocol = proto;
            x.resultStore.dir = dir.str();
            jobs.push_back({workload, x, ""});
        }
    }

    resultStoreStats().reset();
    const std::vector<ExperimentResult> cold = runSweep(jobs, 1);
    EXPECT_EQ(resultStoreStats().misses, jobs.size());

    resultStoreStats().reset();
    const std::vector<ExperimentResult> warm = runSweep(jobs, 4);
    EXPECT_EQ(resultStoreStats().hits, jobs.size());
    EXPECT_EQ(resultStoreStats().misses, 0u);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
        EXPECT_EQ(render(warm[i]), render(cold[i])) << i;
}

TEST(ResultStore, KeyChangesWithConfigScaleFlagsAndGit)
{
    const ExperimentConfig x = smallCell();
    const std::uint64_t base =
        resultKey("ocean", x.config, x.scale, false, false, "v1")
            .hash();

    Config tweaked = x.config;
    tweaked.seed += 1;
    EXPECT_NE(resultKey("ocean", tweaked, x.scale, false, false,
                        "v1")
                  .hash(),
              base);
    EXPECT_NE(resultKey("ocean", x.config, x.scale * 2, false,
                        false, "v1")
                  .hash(),
              base);
    EXPECT_NE(resultKey("ocean", x.config, x.scale, true, false,
                        "v1")
                  .hash(),
              base);
    EXPECT_NE(resultKey("ocean", x.config, x.scale, false, false,
                        "v2-dirty")
                  .hash(),
              base);
    EXPECT_NE(resultKey("fmm", x.config, x.scale, false, false,
                        "v1")
                  .hash(),
              base);
    // Same inputs, same key: the store is consultable across runs.
    EXPECT_EQ(resultKey("ocean", x.config, x.scale, false, false,
                        "v1")
                  .hash(),
              base);
}

TEST(ResultStore, ConfigChangeMissesInsteadOfServingStale)
{
    QuietScope quiet;
    TempDir dir("stale");
    ExperimentConfig x = smallCell();
    x.resultStore.dir = dir.str();
    (void)runExperiment("ocean", x);

    x.config.seed += 17;
    resultStoreStats().reset();
    (void)runExperiment("ocean", x);
    EXPECT_EQ(resultStoreStats().hits, 0u);
    EXPECT_EQ(resultStoreStats().misses, 1u);
}

TEST(ResultStore, CorruptEntryIsRejectedAndResimulated)
{
    QuietScope quiet;
    TempDir dir("corrupt");
    ExperimentConfig x = smallCell();
    x.resultStore.dir = dir.str();
    const ExperimentResult cold = runExperiment("ocean", x);

    // Find the one entry and truncate it mid-document.
    std::string entry;
    for (const auto &de :
         std::filesystem::directory_iterator(dir.path))
        entry = de.path().string();
    ASSERT_FALSE(entry.empty());
    {
        std::ifstream in(entry, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 64u);
        std::ofstream out(entry,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }

    resultStoreStats().reset();
    const ExperimentResult redone = runExperiment("ocean", x);
    EXPECT_EQ(resultStoreStats().corrupt, 1u);
    EXPECT_EQ(resultStoreStats().hits, 0u);
    EXPECT_EQ(render(redone), render(cold));

    // The re-simulation overwrote the bad entry: warm again.
    resultStoreStats().reset();
    (void)runExperiment("ocean", x);
    EXPECT_EQ(resultStoreStats().hits, 1u);
}

TEST(ResultStore, MismatchedKeyPreimageIsCorruptNotAHit)
{
    QuietScope quiet;
    TempDir dir("preimage");
    ExperimentConfig x = smallCell();
    const ExperimentResult res = runExperiment("ocean", x);

    // Write a well-formed entry recording a DIFFERENT key preimage
    // at the path our key hashes to (a renamed file / collision).
    const std::string path =
        entryPathFor(dir.str(), "ocean", x, "v1");
    storeResult(path, "result_v1 something=else", res);
    const ContentKey key =
        resultKey("ocean", x.config, x.scale, false, false, "v1");

    resultStoreStats().reset();
    ExperimentResult out;
    EXPECT_FALSE(loadCachedResult(path, key.describe(), out));
    EXPECT_EQ(resultStoreStats().corrupt, 1u);
}

TEST(ResultStore, RefreshResimulatesAndOverwrites)
{
    QuietScope quiet;
    TempDir dir("refresh");
    ExperimentConfig x = smallCell();
    x.resultStore.dir = dir.str();
    const ExperimentResult cold = runExperiment("ocean", x);

    x.resultStore.refresh = true;
    resultStoreStats().reset();
    const ExperimentResult redone = runExperiment("ocean", x);
    EXPECT_EQ(resultStoreStats().hits, 0u);
    EXPECT_EQ(resultStoreStats().misses, 1u);
    EXPECT_EQ(render(redone), render(cold));
}

TEST(ResultStore, UncacheableCellsBypassTheStore)
{
    QuietScope quiet;
    TempDir dir("bypass");
    ExperimentConfig x = smallCell();
    x.resultStore.dir = dir.str();
    x.checkCoherence = true;
    EXPECT_FALSE(resultCacheable(x));

    resultStoreStats().reset();
    (void)runExperiment("ocean", x);
    EXPECT_EQ(resultStoreStats().bypasses, 1u);
    EXPECT_EQ(resultStoreStats().hits, 0u);
    EXPECT_EQ(resultStoreStats().misses, 0u);
    // No entry was written.
    unsigned entries = 0;
    for (const auto &de :
         std::filesystem::directory_iterator(dir.path)) {
        (void)de;
        ++entries;
    }
    EXPECT_EQ(entries, 0u);
}

namespace {

/** Drive a SweepServer over string streams; returns parsed events. */
std::vector<Json>
serveScript(SweepServer &server, const std::string &script,
            unsigned *served = nullptr)
{
    std::istringstream in(script);
    std::ostringstream out;
    const unsigned n = server.serve(in, out);
    if (served != nullptr)
        *served = n;
    std::vector<Json> events;
    std::istringstream lines(out.str());
    for (std::string line; std::getline(lines, line);) {
        auto doc = Json::parse(line);
        EXPECT_TRUE(doc.has_value()) << line;
        if (doc)
            events.push_back(*doc);
    }
    return events;
}

std::string
eventName(const Json &ev)
{
    const Json *e = ev.find("event");
    return e != nullptr && e->isString() ? e->asString() : "";
}

} // namespace

TEST(SweepServer, ServesQueuedRequestsAndStreamsResults)
{
    QuietScope quiet;
    TempDir dir("server");
    ServerOptions so;
    so.resultStore.dir = dir.str();
    so.jobs = 2;
    so.defaultScale = 0.05;
    SweepServer server(so);

    const std::string script =
        "{\"op\":\"sweep\",\"id\":\"q1\",\"cells\":["
        "{\"workload\":\"ocean\",\"label\":\"dir\"},"
        "{\"workload\":\"ocean\",\"label\":\"sp\",\"set\":"
        "{\"protocol\":\"predicted\",\"predictor\":\"sp\"}}]}\n"
        "{\"op\":\"sweep\",\"id\":\"q2\",\"set\":{\"numCores\":8},"
        "\"cells\":[{\"workload\":\"fmm\"}]}\n"
        "{\"op\":\"stats\"}\n"
        "{\"op\":\"shutdown\"}\n";
    unsigned served = 0;
    const std::vector<Json> events =
        serveScript(server, script, &served);
    EXPECT_EQ(served, 4u);
    EXPECT_TRUE(server.shutdownRequested());

    std::vector<std::string> names;
    names.reserve(events.size());
    for (const Json &ev : events)
        names.push_back(eventName(ev));
    const std::vector<std::string> expect = {
        "accepted", "result", "result", "done",
        "accepted", "result", "done", "stats", "bye"};
    EXPECT_EQ(names, expect);

    // Every result payload decodes through the codec.
    for (const Json &ev : events) {
        if (eventName(ev) != "result")
            continue;
        const Json *payload = ev.find("result");
        ASSERT_NE(payload, nullptr);
        ExperimentResult res;
        std::string err;
        EXPECT_TRUE(resultFromJson(*payload, res, err)) << err;
        EXPECT_GT(res.run.ticks, 0u);
    }

    // First done event: 2 cold cells -> 2 misses, 0 hits.
    const Json &done1 = events[3];
    EXPECT_EQ(done1.find("misses")->asNumber(), 2.0);
    EXPECT_EQ(done1.find("hits")->asNumber(), 0.0);

    // Gauges: all cells ran, queue drained, store traffic visible.
    const Json &stats = events[7];
    const Json *gauges = stats.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->find("server.cells_run")->asNumber(), 3.0);
    EXPECT_EQ(gauges->find("server.queue_depth")->asNumber(), 0.0);
    // The stats op is itself the third request served.
    EXPECT_EQ(gauges->find("server.requests_served")->asNumber(),
              3.0);
    ASSERT_NE(gauges->find("store.misses"), nullptr);

    // Same sweep again on a fresh server: warm, flagged cached, and
    // the result events are byte-identical in order and content.
    SweepServer warm_server(so);
    const std::vector<Json> warm = serveScript(
        warm_server,
        script.substr(0, script.find("{\"op\":\"stats\"}")));
    std::vector<std::string> cold_results;
    std::vector<std::string> warm_results;
    for (const Json &ev : events)
        if (eventName(ev) == "result")
            cold_results.push_back(ev.dump());
    for (const Json &ev : warm) {
        if (eventName(ev) != "result")
            continue;
        EXPECT_TRUE(ev.find("cached")->asBool());
        Json stripped = ev;
        stripped["cached"] = Json(false);
        Json original = Json::parse(
                            cold_results[warm_results.size()])
                            .value();
        original["cached"] = Json(false);
        EXPECT_EQ(stripped.dump(), original.dump());
        warm_results.push_back(ev.dump());
    }
    EXPECT_EQ(warm_results.size(), cold_results.size());
}

TEST(SweepServer, RejectsBadRequestsWithoutDying)
{
    QuietScope quiet;
    ServerOptions so;
    so.jobs = 1;
    so.defaultScale = 0.05;
    SweepServer server(so);

    const std::string script =
        "this is not json\n"
        "{\"op\":\"frobnicate\",\"id\":7}\n"
        "{\"op\":\"sweep\",\"id\":\"q\",\"cells\":["
        "{\"workload\":\"no-such-workload\"}]}\n"
        "{\"op\":\"sweep\",\"id\":\"q\",\"cells\":["
        "{\"workload\":\"ocean\",\"set\":{\"numCores\":\"zero\"}}"
        "]}\n"
        "{\"op\":\"sweep\",\"id\":\"q\"}\n";
    const std::vector<Json> events = serveScript(server, script);
    ASSERT_EQ(events.size(), 5u);
    for (const Json &ev : events) {
        EXPECT_EQ(eventName(ev), "error");
        EXPECT_FALSE(ev.find("error")->asString().empty());
    }
    // Server is still healthy after the garbage: EOF ended serve(),
    // not a shutdown op.
    EXPECT_FALSE(server.shutdownRequested());
}

TEST(SweepServer, TriageOrdersAndSkipsFromTraceStore)
{
    QuietScope quiet;
    TempDir traces("triage");
    // Neutral estimate without a trace store entry.
    Config cfg;
    const TriageEstimate neutral =
        triageCell("ocean", cfg, 0.05, "");
    EXPECT_FALSE(neutral.fromTrace);
    EXPECT_EQ(neutral.score, 1.0);

    // Skip mode never drops neutral cells.
    ServerOptions so;
    so.jobs = 1;
    so.defaultScale = 0.05;
    so.triage = TriageMode::skip;
    so.triageThreshold = 1e9;
    so.traceDir = traces.str();
    SweepServer server(so);
    const std::vector<Json> events = serveScript(
        server,
        "{\"op\":\"sweep\",\"id\":\"t\",\"cells\":["
        "{\"workload\":\"ocean\"}]}\n");
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(eventName(events[0]), "triage");
    EXPECT_EQ(events[0].find("skipped")->size(), 0u);
    EXPECT_EQ(eventName(events[1]), "accepted");
    EXPECT_EQ(eventName(events[2]), "result");
}
