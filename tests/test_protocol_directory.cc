/**
 * @file
 * Directory MESIF protocol scenario tests: miss service paths, state
 * transitions, writebacks, and the coherence/directory invariant
 * checkers.
 */

#include <gtest/gtest.h>

#include "harness.hh"

using namespace spp;
using namespace spp::test;

TEST(DirProtocol, ColdReadFillsExclusive)
{
    ProtoHarness h;
    AccessOutcome out = h.access(0, 0x10000, false);
    EXPECT_TRUE(out.miss());
    EXPECT_TRUE(out.offChip);
    EXPECT_FALSE(out.communicating);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::exclusive);
    EXPECT_TRUE(h.sys->drained());
}

TEST(DirProtocol, SecondReadIsLocalHit)
{
    ProtoHarness h;
    h.access(0, 0x10000, false);
    AccessOutcome out = h.access(0, 0x10000, false);
    EXPECT_FALSE(out.miss());
    EXPECT_TRUE(out.l1Hit);
}

TEST(DirProtocol, CacheToCacheReadFromExclusive)
{
    ProtoHarness h;
    h.access(0, 0x10000, false); // Core 0 gets E.
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_FALSE(out.offChip);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
    // Requester becomes the forwarder, the old owner degrades to S.
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::forwarding);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::shared);
}

TEST(DirProtocol, CacheToCacheReadFromModified)
{
    ProtoHarness h;
    h.access(0, 0x10000, true); // Core 0 gets M.
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::modified);
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::shared);
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::forwarding);
    h.sys->checkCoherence(); // Dirty data deposited at home.
}

TEST(DirProtocol, ChainOfReadersPassesForwarding)
{
    ProtoHarness h;
    h.access(0, 0x10000, true);
    for (CoreId c = 1; c < 6; ++c) {
        AccessOutcome out = h.access(c, 0x10000, false);
        EXPECT_EQ(out.servicedBy, CoreSet::single(c - 1))
            << "reader " << c;
        EXPECT_EQ(h.l2State(c, 0x10000), Mesif::forwarding);
        EXPECT_EQ(h.l2State(c - 1, 0x10000), Mesif::shared);
    }
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(DirProtocol, WriteInvalidatesAllSharers)
{
    ProtoHarness h;
    h.access(0, 0x10000, false);
    h.access(1, 0x10000, false);
    h.access(2, 0x10000, false);
    AccessOutcome out = h.access(3, 0x10000, true);
    EXPECT_TRUE(out.communicating);
    EXPECT_TRUE(out.servicedBy.contains(CoreSet{0, 1, 2}));
    EXPECT_EQ(h.l2State(3, 0x10000), Mesif::modified);
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_EQ(h.l2State(c, 0x10000), Mesif::invalid);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(DirProtocol, UpgradeFromShared)
{
    ProtoHarness h;
    h.access(0, 0x10000, false); // E at 0.
    h.access(1, 0x10000, false); // F at 1, S at 0.
    AccessOutcome out = h.access(0, 0x10000, true); // Upgrade.
    EXPECT_TRUE(out.upgrade);
    EXPECT_TRUE(out.communicating);
    EXPECT_TRUE(out.servicedBy.test(1));
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::modified);
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::invalid);
}

TEST(DirProtocol, SilentExclusiveToModified)
{
    ProtoHarness h;
    h.access(0, 0x10000, false);
    AccessOutcome out = h.access(0, 0x10000, true);
    EXPECT_FALSE(out.miss()); // E -> M without a transaction.
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::modified);
}

TEST(DirProtocol, WriteMissGetsDataFromOwner)
{
    ProtoHarness h;
    h.access(0, 0x10000, true); // M at 0.
    AccessOutcome out = h.access(1, 0x10000, true);
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
    EXPECT_FALSE(out.offChip);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::invalid);
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::modified);
}

TEST(DirProtocol, DirtyEvictionWritesBack)
{
    // Tiny direct-mapped L2: two lines mapping to the same set.
    Config cfg = ProtoHarness::smallConfig();
    cfg.l2Bytes = 8 * 1024;
    cfg.l2Assoc = 1;
    cfg.l1Bytes = 1024;
    ProtoHarness h(cfg);
    const unsigned sets = cfg.l2Bytes / cfg.lineBytes;
    const Addr a = 0x10000;
    const Addr b = a + static_cast<Addr>(sets) * cfg.lineBytes;

    h.access(0, a, true);  // M at 0.
    h.access(0, b, false); // Evicts a; writeback to home.
    EXPECT_EQ(h.l2State(0, a), Mesif::invalid);
    EXPECT_GE(h.sys->stats().writebacks.value(), 1u);
    EXPECT_TRUE(h.sys->drained());

    // The dirty data must now live at memory: another core's read
    // is serviced off-chip with the written version.
    AccessOutcome out = h.access(1, a, false);
    EXPECT_TRUE(out.offChip);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(DirProtocol, ReadAfterEvictionRefetches)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.l2Bytes = 8 * 1024;
    cfg.l2Assoc = 1;
    cfg.l1Bytes = 1024;
    ProtoHarness h(cfg);
    const unsigned sets = cfg.l2Bytes / cfg.lineBytes;
    const Addr a = 0x10000;
    const Addr b = a + static_cast<Addr>(sets) * cfg.lineBytes;

    AccessOutcome w = h.access(0, a, true);
    h.access(0, b, false);
    AccessOutcome out = h.access(0, a, false); // Back again.
    EXPECT_TRUE(out.miss());
    EXPECT_EQ(out.dataVersion, w.dataVersion); // Data survived.
}

TEST(DirProtocol, ConcurrentReadersSameLine)
{
    ProtoHarness h;
    h.access(0, 0x10000, true);
    std::vector<std::tuple<CoreId, Addr, bool>> reqs;
    for (CoreId c = 1; c < 16; ++c)
        reqs.emplace_back(c, Addr{0x10000}, false);
    auto outs = h.accessAll(reqs);
    for (const auto &out : outs) {
        EXPECT_TRUE(out.communicating);
        EXPECT_EQ(out.dataVersion, outs[0].dataVersion);
    }
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(DirProtocol, ConcurrentWritersSameLine)
{
    ProtoHarness h;
    std::vector<std::tuple<CoreId, Addr, bool>> reqs;
    for (CoreId c = 0; c < 8; ++c)
        reqs.emplace_back(c, Addr{0x10000}, true);
    auto outs = h.accessAll(reqs);
    // Exactly one core ends with the line in M.
    unsigned owners = 0;
    for (CoreId c = 0; c < 16; ++c)
        owners += h.l2State(c, 0x10000) == Mesif::modified;
    EXPECT_EQ(owners, 1u);
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(DirProtocol, MixedReadersWritersSameLine)
{
    ProtoHarness h;
    std::vector<std::tuple<CoreId, Addr, bool>> reqs;
    for (CoreId c = 0; c < 12; ++c)
        reqs.emplace_back(c, Addr{0x10000}, c % 3 == 0);
    h.accessAll(reqs);
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST(DirProtocol, VersionsMonotonicUnderWrites)
{
    ProtoHarness h;
    std::uint64_t last = 0;
    for (int i = 0; i < 10; ++i) {
        AccessOutcome out = h.access(i % 4, 0x10000, true);
        EXPECT_GT(out.dataVersion, last);
        last = out.dataVersion;
    }
}

TEST(DirProtocol, StatsAreConsistent)
{
    ProtoHarness h;
    h.access(0, 0x10000, false);
    h.access(1, 0x10000, false);
    h.access(2, 0x20000, true);
    const MemSysStats &s = h.sys->stats();
    EXPECT_EQ(s.accesses.value(), 3u);
    EXPECT_EQ(s.misses.value(), 3u);
    EXPECT_EQ(s.communicatingMisses.value(), 1u);
    EXPECT_EQ(s.offChipMisses.value(), 2u);
    EXPECT_EQ(s.missLatency.count(), 3u);
}
