/**
 * @file
 * Broadcast snooping protocol scenario tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "harness.hh"

using namespace spp;
using namespace spp::test;

namespace {

Config
bcConfig()
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.protocol = Protocol::broadcast;
    return cfg;
}

} // namespace

TEST(Broadcast, ColdReadFromMemory)
{
    ProtoHarness h(bcConfig());
    AccessOutcome out = h.access(0, 0x10000, false);
    EXPECT_TRUE(out.miss());
    EXPECT_TRUE(out.offChip);
    EXPECT_FALSE(out.communicating);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::exclusive);
    EXPECT_TRUE(h.sys->drained());
}

TEST(Broadcast, CacheToCacheRead)
{
    ProtoHarness h(bcConfig());
    h.access(0, 0x10000, true);
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_FALSE(out.offChip);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::forwarding);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::shared);
    h.sys->checkCoherence();
}

TEST(Broadcast, CacheToCacheBeatsDirectoryLatency)
{
    Tick dir_lat = 0, bc_lat = 0;
    {
        ProtoHarness h;
        h.access(0, 0x10000, true);
        dir_lat = h.access(1, 0x10000, false).latency();
    }
    {
        ProtoHarness h(bcConfig());
        h.access(0, 0x10000, true);
        bc_lat = h.access(1, 0x10000, false).latency();
    }
    EXPECT_LT(bc_lat, dir_lat);
}

TEST(Broadcast, WriteInvalidatesSharers)
{
    ProtoHarness h(bcConfig());
    h.access(0, 0x10000, false);
    h.access(1, 0x10000, false);
    h.access(2, 0x10000, false);
    AccessOutcome out = h.access(3, 0x10000, true);
    EXPECT_TRUE(out.communicating);
    EXPECT_TRUE(out.servicedBy.contains(CoreSet{0, 1, 2}));
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_EQ(h.l2State(c, 0x10000), Mesif::invalid);
    EXPECT_EQ(h.l2State(3, 0x10000), Mesif::modified);
    h.sys->checkCoherence();
}

TEST(Broadcast, DirtyOwnerSuppliesData)
{
    ProtoHarness h(bcConfig());
    AccessOutcome w = h.access(0, 0x10000, true);
    AccessOutcome out = h.access(1, 0x10000, false);
    // The (cancelled) speculative memory fetch must not have won:
    // the reader sees the writer's version.
    EXPECT_EQ(out.dataVersion, w.dataVersion);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
}

TEST(Broadcast, MemoryDataFillsForwardingWithSharers)
{
    ProtoHarness h(bcConfig());
    h.access(0, 0x10000, false); // E at 0.
    h.access(1, 0x10000, false); // c2c: F at 1, S at 0.
    // Evict nothing; third reader: F at 1 forwards again.
    AccessOutcome out = h.access(2, 0x10000, false);
    EXPECT_EQ(out.servicedBy, CoreSet{1});
    h.sys->checkCoherence();
}

TEST(Broadcast, SnoopLookupsChargedToAllPeers)
{
    ProtoHarness h(bcConfig());
    h.access(0, 0x10000, false);
    // Every miss snoops all 15 peers.
    EXPECT_EQ(h.sys->stats().snoopLookups.value(), 15u);
    h.access(1, 0x10000, false);
    EXPECT_EQ(h.sys->stats().snoopLookups.value(), 30u);
}

TEST(Broadcast, BandwidthFarAboveDirectory)
{
    std::uint64_t dir_bytes = 0, bc_bytes = 0;
    {
        ProtoHarness h;
        h.access(0, 0x10000, true);
        h.access(1, 0x10000, false);
        dir_bytes = h.mesh->stats().flitBytes.value();
    }
    {
        ProtoHarness h(bcConfig());
        h.access(0, 0x10000, true);
        h.access(1, 0x10000, false);
        bc_bytes = h.mesh->stats().flitBytes.value();
    }
    EXPECT_GT(bc_bytes, 2 * dir_bytes);
}

TEST(Broadcast, ConcurrentWritersSerialize)
{
    ProtoHarness h(bcConfig());
    std::vector<std::tuple<CoreId, Addr, bool>> reqs;
    for (CoreId c = 0; c < 8; ++c)
        reqs.emplace_back(c, Addr{0x10000}, true);
    auto outs = h.accessAll(reqs);
    unsigned owners = 0;
    for (CoreId c = 0; c < 16; ++c)
        owners += h.l2State(c, 0x10000) == Mesif::modified;
    EXPECT_EQ(owners, 1u);
    // Versions are all distinct (every write serialized).
    std::set<std::uint64_t> versions;
    for (const auto &out : outs)
        versions.insert(out.dataVersion);
    EXPECT_EQ(versions.size(), outs.size());
    EXPECT_TRUE(h.sys->drained());
    h.sys->checkCoherence();
}

TEST(Broadcast, UpgradeCompletesWithoutData)
{
    ProtoHarness h(bcConfig());
    h.access(0, 0x10000, false);
    h.access(1, 0x10000, false);
    AccessOutcome out = h.access(1, 0x10000, true); // Upgrade.
    EXPECT_TRUE(out.upgrade);
    EXPECT_FALSE(out.offChip);
    EXPECT_EQ(h.l2State(1, 0x10000), Mesif::modified);
    EXPECT_EQ(h.l2State(0, 0x10000), Mesif::invalid);
    h.sys->checkCoherence();
}

TEST(Broadcast, DirtyEvictionWritesBack)
{
    Config cfg = bcConfig();
    cfg.l2Bytes = 8 * 1024;
    cfg.l2Assoc = 1;
    cfg.l1Bytes = 1024;
    ProtoHarness h(cfg);
    const unsigned sets = cfg.l2Bytes / cfg.lineBytes;
    const Addr a = 0x10000;
    const Addr b = a + static_cast<Addr>(sets) * cfg.lineBytes;
    AccessOutcome w = h.access(0, a, true);
    h.access(0, b, false); // Evicts dirty a.
    AccessOutcome out = h.access(1, a, false);
    EXPECT_TRUE(out.offChip);
    EXPECT_EQ(out.dataVersion, w.dataVersion);
    h.sys->checkCoherence();
}

// ---------------------------------------------------------------------
// Completion-predicate coverage (maybeResumeCore): the requester must
// resume exactly when its data source and response set allow it, for
// each of the three places dataReceived can be set — peer data
// (onData), memory data (onData, fromMemory), and owner data riding on
// an invalidation ack (onAckInv with ownerAck).
// ---------------------------------------------------------------------

TEST(BroadcastCompletion, PeerDataResumesBeforeMemoryResponse)
{
    // Every broadcast miss also launches a speculative memory fetch
    // (memLatency ticks away). When a peer supplies the data the
    // requester must resume on it immediately — not wait for the full
    // response set that includes the speculative memory reply.
    Config cfg = bcConfig();
    ProtoHarness h(cfg);
    h.access(0, 0x10000, true); // Core 0 owns the line dirty.
    AccessOutcome out = h.access(1, 0x10000, false);
    EXPECT_FALSE(out.offChip);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
    EXPECT_LT(out.latency(), cfg.memLatency)
        << "peer-supplied read stalled on the speculative memory "
           "fetch";
    h.sys->checkCoherence();
    EXPECT_TRUE(h.sys->drained());
}

TEST(BroadcastCompletion, MemoryOnlyFillWaitsForEverySnoopResponse)
{
    // With no cached copy anywhere, only the full snoop-response set
    // proves exclusivity: the cold read must both pay the memory
    // latency and land in E (peerHadCopy never set by any response).
    Config cfg = bcConfig();
    ProtoHarness h(cfg);
    AccessOutcome out = h.access(3, 0x20000, false);
    EXPECT_TRUE(out.offChip);
    EXPECT_GE(out.latency(), cfg.memLatency);
    EXPECT_EQ(h.l2State(3, 0x20000), Mesif::exclusive);
    h.sys->checkCoherence();
    EXPECT_TRUE(h.sys->drained());
}

TEST(BroadcastCompletion, WriteMissTakesDataFromOwnerAck)
{
    // A write miss against a dirty owner gets its data on the owner's
    // invalidation ack (the ownerAck path), not from memory.
    ProtoHarness h(bcConfig());
    AccessOutcome w0 = h.access(0, 0x30000, true);
    AccessOutcome out = h.access(2, 0x30000, true);
    EXPECT_FALSE(out.offChip);
    EXPECT_TRUE(out.servicedBy.contains(CoreSet{0}));
    EXPECT_GT(out.dataVersion, w0.dataVersion);
    EXPECT_EQ(h.l2State(2, 0x30000), Mesif::modified);
    EXPECT_EQ(h.l2State(0, 0x30000), Mesif::invalid);
    h.sys->checkCoherence();
    EXPECT_TRUE(h.sys->drained());
}

TEST(BroadcastCompletion, LateMemoryDataAfterWritebackRace)
{
    // Regression for the retired-transaction race: core 0 evicts a
    // dirty line (writeback in flight) while core 1 misses on it. The
    // writeback buffer answers the snoop with data, the transaction
    // can retire on that copy plus the snoop responses, and the slower
    // speculative memory reply then arrives for a transaction that no
    // longer exists. It must be dropped, with the freshest version
    // winning the fill.
    Config cfg = bcConfig();
    cfg.l2Bytes = 8 * 1024;
    cfg.l2Assoc = 1;
    cfg.l1Bytes = 1024;
    ProtoHarness h(cfg);
    const unsigned sets = cfg.l2Bytes / cfg.lineBytes;
    const Addr a = 0x10000;
    const Addr b = a + static_cast<Addr>(sets) * cfg.lineBytes;
    AccessOutcome w = h.access(0, a, true); // Dirty owner.
    auto outs = h.accessAll({{0, b, false},  // Evicts dirty a.
                             {1, a, false}}); // Races the writeback.
    EXPECT_EQ(outs[1].dataVersion, w.dataVersion)
        << "reader lost the written value across the writeback race";
    h.sys->checkCoherence();
    EXPECT_TRUE(h.sys->drained());
}

TEST(BroadcastCompletion, ReadDuringInvalidationKeepsOrdering)
{
    // Late-ack ordering: a reader and a writer race on a line held
    // shared by many cores. Whatever interleaving the fabric picks,
    // both must complete, versions must be monotone, and the final
    // state must satisfy SWMR.
    ProtoHarness h(bcConfig());
    for (CoreId c = 0; c < 4; ++c)
        h.access(c, 0x40000, false);
    auto outs = h.accessAll({{5, 0x40000, true},
                             {6, 0x40000, false}});
    EXPECT_TRUE(outs[0].isWrite);
    EXPECT_GT(outs[0].dataVersion, 0u);
    h.sys->checkCoherence();
    EXPECT_TRUE(h.sys->drained());
}
