/**
 * @file
 * Unit tests for CoreSet.
 */

#include <gtest/gtest.h>

#include "common/core_set.hh"

using namespace spp;

TEST(CoreSet, StartsEmpty)
{
    CoreSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mask(), 0u);
}

TEST(CoreSet, SetResetTest)
{
    CoreSet s;
    s.set(3);
    s.set(15);
    EXPECT_TRUE(s.test(3));
    EXPECT_TRUE(s.test(15));
    EXPECT_FALSE(s.test(4));
    EXPECT_EQ(s.count(), 2u);
    s.reset(3);
    EXPECT_FALSE(s.test(3));
    EXPECT_EQ(s.count(), 1u);
}

TEST(CoreSet, InitializerList)
{
    CoreSet s{1, 5, 9};
    EXPECT_EQ(s.count(), 3u);
    EXPECT_TRUE(s.test(1));
    EXPECT_TRUE(s.test(5));
    EXPECT_TRUE(s.test(9));
}

TEST(CoreSet, Single)
{
    CoreSet s = CoreSet::single(7);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.first(), 7u);
}

TEST(CoreSet, All)
{
    EXPECT_EQ(CoreSet::all(16).count(), 16u);
    EXPECT_EQ(CoreSet::all(64).count(), 64u);
    EXPECT_EQ(CoreSet::all(1).mask(), 1u);
}

TEST(CoreSet, SetOperations)
{
    CoreSet a{1, 2, 3};
    CoreSet b{3, 4};
    EXPECT_EQ((a | b), (CoreSet{1, 2, 3, 4}));
    EXPECT_EQ((a & b), CoreSet{3});
    EXPECT_EQ((a - b), (CoreSet{1, 2}));
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE((a - b).intersects(b));
}

TEST(CoreSet, Contains)
{
    CoreSet big{1, 2, 3, 4};
    EXPECT_TRUE(big.contains(CoreSet{2, 3}));
    EXPECT_TRUE(big.contains(CoreSet{}));
    EXPECT_FALSE(big.contains(CoreSet{2, 5}));
    EXPECT_TRUE(CoreSet{}.contains(CoreSet{}));
}

TEST(CoreSet, Iteration)
{
    CoreSet s{0, 7, 31, 63};
    std::vector<CoreId> seen;
    for (CoreId c : s)
        seen.push_back(c);
    EXPECT_EQ(seen, (std::vector<CoreId>{0, 7, 31, 63}));
}

TEST(CoreSet, ToString)
{
    EXPECT_EQ((CoreSet{0, 5}).toString(), "{0,5}");
    EXPECT_EQ(CoreSet{}.toString(), "{}");
}

TEST(CoreSet, ToBitString)
{
    CoreSet s{0, 3};
    EXPECT_EQ(s.toBitString(4), "1001");
    EXPECT_EQ(s.toBitString(6), "100100");
}

TEST(CoreSet, CompoundAssignment)
{
    CoreSet s{1};
    s |= CoreSet{2};
    EXPECT_EQ(s, (CoreSet{1, 2}));
    s &= CoreSet{2, 3};
    EXPECT_EQ(s, CoreSet{2});
}

// Property-style sweep: union/intersection/difference relations hold
// for a range of generated masks.
class CoreSetAlgebra : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CoreSetAlgebra, Laws)
{
    const std::uint64_t seed = GetParam();
    const CoreSet a = CoreSet::fromMask(seed * 0x9e3779b97f4a7c15ULL);
    const CoreSet b = CoreSet::fromMask(seed * 0xbf58476d1ce4e5b9ULL);

    EXPECT_EQ((a | b).count() + (a & b).count(),
              a.count() + b.count());
    EXPECT_TRUE((a | b).contains(a));
    EXPECT_TRUE(a.contains(a & b));
    EXPECT_EQ(((a - b) | (a & b)), a);
    EXPECT_FALSE((a - b).intersects(b));
    unsigned n = 0;
    for (CoreId c : a) {
        EXPECT_TRUE(a.test(c));
        ++n;
    }
    EXPECT_EQ(n, a.count());
}

INSTANTIATE_TEST_SUITE_P(Masks, CoreSetAlgebra,
                         ::testing::Range<std::uint64_t>(1, 50));

// --- Reference-model property test -----------------------------------
//
// Drive CoreSet and std::bitset through the same random op sequence
// and demand identical observable state after every step. The sizes
// straddle the word boundaries where shift bugs live (63/64/65) plus
// a genuinely multi-word width.

#include <bitset>

#include "common/rng.hh"

namespace {

class CoreSetVsBitset : public ::testing::TestWithParam<unsigned>
{};

} // namespace

TEST_P(CoreSetVsBitset, RandomOpsMatchReference)
{
    const unsigned n = GetParam();
    ASSERT_LE(n, maxCores);
    Rng rng(0xC0DE + n);
    CoreSet a, b;
    std::bitset<maxCores> ra, rb;

    auto check = [&](int step) {
        ASSERT_EQ(a.count(), ra.count()) << "n=" << n << " step " << step;
        for (unsigned c = 0; c < n; ++c)
            ASSERT_EQ(a.test(c), ra.test(c))
                << "n=" << n << " step " << step << " bit " << c;
        // Iteration yields exactly the set bits, ascending.
        CoreId prev = 0;
        unsigned seen = 0;
        for (CoreId c : a) {
            ASSERT_TRUE(ra.test(c));
            if (seen) {
                ASSERT_LT(prev, c);
            }
            prev = c;
            ++seen;
        }
        ASSERT_EQ(seen, ra.count());
    };

    for (int step = 0; step < 3000; ++step) {
        const CoreId c = static_cast<CoreId>(rng.below(n));
        switch (rng.below(9)) {
          case 0: a.set(c); ra.set(c); break;
          case 1: a.reset(c); ra.reset(c); break;
          case 2: b.set(c); rb.set(c); break;
          case 3: a |= b; ra |= rb; break;
          case 4: a &= b; ra &= rb; break;
          case 5: a = a - b; ra &= ~rb; break;
          case 6:
            a = CoreSet::single(c);
            ra.reset();
            ra.set(c);
            break;
          case 7:
            a = CoreSet::all(n);
            ra.reset();
            for (unsigned i = 0; i < n; ++i)
                ra.set(i);
            break;
          case 8: a.clear(); ra.reset(); break;
        }
        check(step);
    }
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, CoreSetVsBitset,
                         ::testing::Values(63u, 64u, 65u, 128u),
                         [](const auto &info) {
                             return "n" + std::to_string(info.param);
                         });

TEST(CoreSet, AllAtWordBoundaries)
{
    // all(64) once shifted by the full word width (UB); pin the
    // boundary sizes explicitly.
    EXPECT_EQ(CoreSet::all(63).count(), 63u);
    EXPECT_EQ(CoreSet::all(64).count(), 64u);
    EXPECT_EQ(CoreSet::all(65).count(), 65u);
    EXPECT_EQ(CoreSet::all(128).count(), 128u);
    EXPECT_EQ(CoreSet::all(maxCores).count(), maxCores);
    EXPECT_FALSE(CoreSet::all(65).test(65));
    EXPECT_TRUE(CoreSet::all(65).test(64));
}
