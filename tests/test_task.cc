/**
 * @file
 * Unit tests for the coroutine Task type and the ThreadContext /
 * CmpSystem execution layer.
 */

#include <gtest/gtest.h>

#include "sim/cmp_system.hh"
#include "sim/task.hh"

using namespace spp;

namespace {

Task
noopTask(int &counter)
{
    ++counter;
    co_return;
}

Task
childTask(std::vector<int> &log, int id)
{
    log.push_back(id);
    co_return;
}

Task
parentTask(std::vector<int> &log)
{
    log.push_back(0);
    co_await childTask(log, 1);
    log.push_back(2);
    co_await childTask(log, 3);
    log.push_back(4);
}

} // namespace

TEST(Task, LazyStart)
{
    int counter = 0;
    Task t = noopTask(counter);
    EXPECT_EQ(counter, 0); // Not started yet.
    bool done = false;
    t.start([&] { done = true; });
    EXPECT_EQ(counter, 1);
    EXPECT_TRUE(done);
    EXPECT_TRUE(t.done());
}

TEST(Task, NestedTasksRunInOrder)
{
    std::vector<int> log;
    Task t = parentTask(log);
    t.start();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_TRUE(t.done());
}

TEST(Task, MoveTransfersOwnership)
{
    int counter = 0;
    Task a = noopTask(counter);
    Task b = std::move(a);
    b.start();
    EXPECT_EQ(counter, 1);
}

// --- CmpSystem-level execution ---

namespace {

Config
tinyConfig()
{
    Config cfg;
    cfg.l2Bytes = 64 * 1024;
    cfg.l1Bytes = 4 * 1024;
    return cfg;
}

} // namespace

TEST(CmpSystem, RunsSimplePrograms)
{
    CmpSystem sys(tinyConfig());
    RunResult r = sys.run([](ThreadContext &ctx) -> Task {
        for (int i = 0; i < 10; ++i) {
            co_await ctx.write(ctx.priv(i), 0x100);
            co_await ctx.compute(10);
        }
    });
    EXPECT_GT(r.ticks, 0u);
    EXPECT_EQ(r.mem.accesses.value(), 16u * 10u);
    EXPECT_GT(r.eventsExecuted, 0u);
}

TEST(CmpSystem, BarrierSynchronizesThreads)
{
    CmpSystem sys(tinyConfig());
    // Producer/consumer through a barrier: every consumer must see
    // the producer's version.
    struct Shared
    {
        std::vector<std::uint64_t> versions =
            std::vector<std::uint64_t>(16, 0);
    };
    auto shared = std::make_shared<Shared>();
    sys.run([shared](ThreadContext &ctx) -> Task {
        const Addr line = ctx.shared(0);
        if (ctx.self() == 0)
            co_await ctx.write(line, 0x10);
        co_await ctx.barrier(0, 0x20);
        AccessOutcome out = co_await ctx.read(line, 0x30);
        shared->versions[ctx.self()] = out.dataVersion;
    });
    for (unsigned c = 1; c < 16; ++c)
        EXPECT_EQ(shared->versions[c], shared->versions[0]);
    EXPECT_GT(shared->versions[0], 0u);
}

TEST(CmpSystem, LocksAreMutuallyExclusiveAndOrdered)
{
    CmpSystem sys(tinyConfig());
    auto order = std::make_shared<std::vector<CoreId>>();
    sys.run([order](ThreadContext &ctx) -> Task {
        co_await ctx.lock(0);
        order->push_back(ctx.self());
        co_await ctx.compute(50);
        co_await ctx.unlock(0);
    });
    EXPECT_EQ(order->size(), 16u);
    // All cores appear exactly once.
    std::set<CoreId> seen(order->begin(), order->end());
    EXPECT_EQ(seen.size(), 16u);
}

TEST(CmpSystem, SemaphoresChainPipelines)
{
    CmpSystem sys(tinyConfig());
    auto order = std::make_shared<std::vector<CoreId>>();
    sys.run([order](ThreadContext &ctx) -> Task {
        const CoreId t = ctx.self();
        if (t != 0)
            co_await ctx.semWait(t, 0x10);
        order->push_back(t);
        if (t + 1 < ctx.numThreads())
            co_await ctx.semPost(t + 1, 0x11);
    });
    // The chain enforces strictly increasing order.
    for (unsigned i = 0; i < order->size(); ++i)
        EXPECT_EQ((*order)[i], i);
}

TEST(CmpSystem, CondvarsSignalAcrossThreads)
{
    CmpSystem sys(tinyConfig());
    auto woken = std::make_shared<std::vector<CoreId>>();
    sys.run([woken](ThreadContext &ctx) -> Task {
        const CoreId t = ctx.self();
        if (t == 0) {
            // Give waiters time to park, then wake them one by one,
            // finishing with a broadcast.
            co_await ctx.compute(4000);
            co_await ctx.condSignal(0, 0x20);
            co_await ctx.compute(200);
            co_await ctx.condBroadcast(0, 0x21);
        } else if (t < 5) {
            co_await ctx.condWait(0, 0x22);
            woken->push_back(t);
        }
    });
    // One waiter woke on the signal, the rest on the broadcast.
    EXPECT_EQ(woken->size(), 4u);
}

TEST(CmpSystem, SyncPointsReachListeners)
{
    CmpSystem sys(tinyConfig());
    unsigned barriers = 0;
    struct Listener : SyncListener
    {
        unsigned *count;
        void
        onSyncPoint(CoreId, const SyncPointInfo &info) override
        {
            if (info.type == SyncType::barrier)
                ++*count;
        }
    } listener;
    listener.count = &barriers;
    sys.syncManager().addListener(&listener);
    sys.run([](ThreadContext &ctx) -> Task {
        co_await ctx.barrier(0, 0x99);
        co_await ctx.barrier(1, 0x9a);
    });
    EXPECT_EQ(barriers, 32u);
}

TEST(CmpSystem, AccessObserverSeesEveryAccess)
{
    CmpSystem sys(tinyConfig());
    unsigned seen = 0;
    sys.setAccessObserver(
        [&](CoreId, Addr, Pc, const AccessOutcome &) { ++seen; });
    RunResult r = sys.run([](ThreadContext &ctx) -> Task {
        for (int i = 0; i < 5; ++i)
            co_await ctx.read(ctx.priv(i), 0x100);
    });
    EXPECT_EQ(seen, r.mem.accesses.value());
}

TEST(CmpSystem, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Config cfg;
        cfg.l2Bytes = 64 * 1024;
        cfg.l1Bytes = 4 * 1024;
        cfg.seed = 77;
        CmpSystem sys(cfg);
        return sys.run([](ThreadContext &ctx) -> Task {
            for (int i = 0; i < 50; ++i) {
                const Addr a =
                    ctx.shared(ctx.rng().below(64));
                if (ctx.rng().chance(0.3))
                    co_await ctx.write(a, 0x100);
                else
                    co_await ctx.read(a, 0x100);
            }
            co_await ctx.barrier(0, 0x200);
        });
    };
    RunResult a = run_once();
    RunResult b = run_once();
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.mem.misses.value(), b.mem.misses.value());
    EXPECT_EQ(a.noc.flitBytes.value(), b.noc.flitBytes.value());
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

TEST(CmpSystem, MaxTicksGuardFires)
{
    Config cfg = tinyConfig();
    cfg.maxTicks = 10; // Far too small to finish.
    CmpSystem sys(cfg);
    EXPECT_DEATH(
        {
            sys.run([](ThreadContext &ctx) -> Task {
                co_await ctx.barrier(0, 1);
            });
        },
        "maxTicks");
}
