/**
 * @file
 * Shared test harness: drives a coherent memory system directly
 * (without the workload layer) so protocol scenarios can be scripted
 * access by access, and provides small helpers used across tests.
 */

#ifndef SPP_TESTS_HARNESS_HH
#define SPP_TESTS_HARNESS_HH

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "coherence/broadcast_protocol.hh"
#include "coherence/directory_protocol.hh"
#include "coherence/multicast_protocol.hh"
#include "common/config.hh"
#include "core/sp_predictor.hh"
#include "event/event_queue.hh"
#include "noc/mesh.hh"
#include "predict/group_predictor.hh"

namespace spp {
namespace test {

/** A small standalone machine: queue + mesh + memory system. */
class ProtoHarness
{
  public:
    explicit ProtoHarness(Config cfg = smallConfig())
        : cfg_(std::move(cfg))
    {
        cfg_.validate();
        mesh = std::make_unique<Mesh>(cfg_, eq);
        DestinationPredictor *pred = nullptr;
        if (cfg_.predictor == PredictorKind::sp) {
            sp.emplace(cfg_, cfg_.numCores);
            pred = &*sp;
        } else if (cfg_.predictor != PredictorKind::none) {
            GroupIndex idx = GroupIndex::none;
            if (cfg_.predictor == PredictorKind::addr)
                idx = GroupIndex::macroBlock;
            else if (cfg_.predictor == PredictorKind::inst)
                idx = GroupIndex::instruction;
            group.emplace(cfg_, cfg_.numCores, idx);
            pred = &*group;
        }
        switch (cfg_.protocol) {
          case Protocol::broadcast:
            sys = std::make_unique<BroadcastMemSys>(cfg_, eq, *mesh);
            break;
          case Protocol::multicast:
            sys = std::make_unique<MulticastMemSys>(cfg_, eq, *mesh,
                                                    pred);
            break;
          default:
            sys = std::make_unique<DirectoryMemSys>(cfg_, eq, *mesh,
                                                    pred);
        }
    }

    /** 16-core paper configuration with a small L2 (fast tests). */
    static Config
    smallConfig()
    {
        Config cfg;
        cfg.l2Bytes = 64 * 1024;
        cfg.l1Bytes = 4 * 1024;
        return cfg;
    }

    /** Issue one access and drain the system; returns the outcome. */
    AccessOutcome
    access(CoreId core, Addr addr, bool is_write, Pc pc = 0x100)
    {
        std::optional<AccessOutcome> out;
        sys->access(core, addr, is_write, pc,
                    [&](const AccessOutcome &o) { out = o; });
        eq.run();
        EXPECT_TRUE(out.has_value());
        return out.value_or(AccessOutcome{});
    }

    /** Issue several concurrent accesses, then drain. */
    std::vector<AccessOutcome>
    accessAll(
        const std::vector<std::tuple<CoreId, Addr, bool>> &reqs,
        Pc pc = 0x200)
    {
        std::vector<AccessOutcome> outs(reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            const auto &[core, addr, write] = reqs[i];
            sys->access(core, addr, write, pc,
                        [&outs, i](const AccessOutcome &o) {
                            outs[i] = o;
                        });
        }
        eq.run();
        return outs;
    }

    DirectoryMemSys *
    dir()
    {
        return dynamic_cast<DirectoryMemSys *>(sys.get());
    }

    /** State of @p line in @p core's L2 (invalid if absent). */
    Mesif
    l2State(CoreId core, Addr line) const
    {
        const CacheLine *l = sys->l2(core).peek(line);
        return l ? l->state : Mesif::invalid;
    }

    const Config &config() const { return cfg_; }

    EventQueue eq;
    std::unique_ptr<Mesh> mesh;
    std::optional<SpPredictor> sp;
    std::optional<GroupPredictor> group;
    std::unique_ptr<MemSys> sys;

  private:
    Config cfg_;
};

} // namespace test
} // namespace spp

#endif // SPP_TESTS_HARNESS_HH
