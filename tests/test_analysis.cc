/**
 * @file
 * Unit tests for the analysis layer: trace collection, locality
 * curves, hot-set distribution, pattern classification, epoch stats,
 * the energy model and the report formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/energy.hh"
#include "analysis/epoch_stats.hh"
#include "analysis/experiment.hh"
#include "analysis/locality.hh"
#include "analysis/patterns.hh"
#include "analysis/report.hh"
#include "analysis/stats_report.hh"

using namespace spp;

namespace {

/** Fabricate an epoch with the given per-target volumes. */
EpochRecord
makeEpoch(CoreId core, std::uint64_t sid, std::uint64_t dyn,
          std::initializer_list<std::pair<CoreId, std::uint32_t>> vols,
          SyncType type = SyncType::barrier)
{
    EpochRecord e(16);
    e.core = core;
    e.staticId = sid;
    e.dynamicId = dyn;
    e.beginType = type;
    for (auto [c, v] : vols) {
        e.volume[c] = v;
        e.commMisses += v;
        e.misses += v;
    }
    return e;
}

} // namespace

// --- EpochRecord ---

TEST(EpochRecord, HotSetThreshold)
{
    EpochRecord e = makeEpoch(0, 1, 0, {{5, 90}, {3, 9}, {7, 1}});
    EXPECT_EQ(e.hotSet(0.10), CoreSet{5});
    EXPECT_EQ(e.hotSet(0.05), (CoreSet{3, 5}));
    EXPECT_EQ(e.totalVolume(), 100u);
}

// --- Locality curves ---

TEST(Locality, CurveShape)
{
    CommTrace trace(16);
    // Synthesize via direct structures is awkward; use classify on a
    // real tiny run instead.
    ExperimentConfig cfg;
    cfg.scale = 0.25;
    cfg.collectTrace = true;
    ExperimentResult r = runExperiment("ocean", cfg);
    const LocalityCurve epoch = epochLocality(*r.trace);
    const LocalityCurve whole = wholeRunLocality(*r.trace);
    ASSERT_EQ(epoch.size(), 16u);
    // Curves are monotonically non-decreasing and end at 1.
    for (unsigned k = 1; k < 16; ++k) {
        EXPECT_GE(epoch[k] + 1e-9, epoch[k - 1]);
        EXPECT_GE(whole[k] + 1e-9, whole[k - 1]);
    }
    EXPECT_NEAR(epoch[15], 1.0, 1e-6);
    EXPECT_NEAR(whole[15], 1.0, 1e-6);
    // Sync-epoch granularity captures locality at least as well as
    // the whole-run view (the paper's Figure 4 claim).
    EXPECT_GE(epoch[0] + 1e-9, whole[0]);
    EXPECT_GE(epoch[1] + 1e-9, whole[1]);
}

TEST(Locality, HotSetDistributionSumsToOne)
{
    ExperimentConfig cfg;
    cfg.scale = 0.25;
    cfg.collectTrace = true;
    ExperimentResult r = runExperiment("fmm", cfg);
    const auto dist = hotSetSizeDistribution(*r.trace, 0.10);
    double sum = 0;
    for (double d : dist)
        sum += d;
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

// --- Pattern classification ---

TEST(Patterns, ClassifyStable)
{
    unsigned stride = 0;
    std::vector<CoreSet> seq(5, CoreSet{3});
    EXPECT_EQ(classifySequence(seq, stride), HotSetPattern::stable);
    EXPECT_EQ(stride, 1u);
}

TEST(Patterns, ClassifyPhaseChange)
{
    unsigned stride = 0;
    std::vector<CoreSet> seq{CoreSet{3}, CoreSet{3}, CoreSet{3},
                             CoreSet{8}, CoreSet{8}};
    EXPECT_EQ(classifySequence(seq, stride),
              HotSetPattern::phaseChange);
}

TEST(Patterns, ClassifyStride2)
{
    unsigned stride = 0;
    std::vector<CoreSet> seq{CoreSet{1}, CoreSet{2}, CoreSet{1},
                             CoreSet{2}, CoreSet{1}, CoreSet{2}};
    EXPECT_EQ(classifySequence(seq, stride), HotSetPattern::stride);
    EXPECT_EQ(stride, 2u);
}

TEST(Patterns, ClassifyStride3)
{
    unsigned stride = 0;
    std::vector<CoreSet> seq{CoreSet{1}, CoreSet{2}, CoreSet{3},
                             CoreSet{1}, CoreSet{2}, CoreSet{3}};
    EXPECT_EQ(classifySequence(seq, stride), HotSetPattern::stride);
    EXPECT_EQ(stride, 3u);
}

TEST(Patterns, ClassifyMixed)
{
    unsigned stride = 0;
    std::vector<CoreSet> seq{CoreSet{1, 4}, CoreSet{1, 7},
                             CoreSet{1, 2}, CoreSet{1, 9},
                             CoreSet{1, 5}};
    EXPECT_EQ(classifySequence(seq, stride), HotSetPattern::mixed);
}

TEST(Patterns, ClassifyRandom)
{
    unsigned stride = 0;
    std::vector<CoreSet> seq{CoreSet{1}, CoreSet{7}, CoreSet{2},
                             CoreSet{9}, CoreSet{5}};
    EXPECT_EQ(classifySequence(seq, stride), HotSetPattern::random);
}

TEST(Patterns, TooFewInstances)
{
    unsigned stride = 0;
    std::vector<CoreSet> seq{CoreSet{1}, CoreSet{1}};
    EXPECT_EQ(classifySequence(seq, stride), HotSetPattern::tooFew);
}

TEST(Patterns, StreamclusterShowsStride2)
{
    ExperimentConfig cfg;
    cfg.scale = 0.5;
    cfg.collectTrace = true;
    ExperimentResult r = runExperiment("streamcluster", cfg);
    auto infos = classifyEpochPatterns(*r.trace, 0.10, 8);
    auto hist = patternHistogram(infos);
    EXPECT_GT(hist[HotSetPattern::stride], 0u);
}

TEST(Patterns, DedupShowsStableEpochs)
{
    ExperimentConfig cfg;
    cfg.scale = 0.5;
    cfg.collectTrace = true;
    ExperimentResult r = runExperiment("dedup", cfg);
    auto infos = classifyEpochPatterns(*r.trace, 0.10, 8);
    auto hist = patternHistogram(infos);
    EXPECT_GT(hist[HotSetPattern::stable], 0u);
}

TEST(Patterns, OceanShowsMixedStencilEpochs)
{
    // Ocean's hot set is the constant {up, down} pair plus varying
    // barrier-noise extras: the "mixed" class (Fig. 6e).
    ExperimentConfig cfg;
    cfg.scale = 0.5;
    cfg.collectTrace = true;
    ExperimentResult r = runExperiment("ocean", cfg);
    auto infos = classifyEpochPatterns(*r.trace, 0.10, 8);
    auto hist = patternHistogram(infos);
    EXPECT_GT(hist[HotSetPattern::mixed] +
                  hist[HotSetPattern::stable],
              0u);
}

// --- Epoch stats ---

TEST(EpochStats, CountsStaticSites)
{
    ExperimentConfig cfg;
    cfg.scale = 0.25;
    cfg.collectTrace = true;
    ExperimentResult r = runExperiment("radiosity", cfg);
    const EpochStats s = computeEpochStats(*r.trace);
    EXPECT_GT(s.staticCriticalSections, 0u);
    EXPECT_GT(s.staticSyncEpochs, 0u);
    EXPECT_GT(s.dynEpochsPerCore, 10.0);
}

// --- Energy model ---

TEST(Energy, ProportionalToTraffic)
{
    EnergyModel m;
    NocStats a, b;
    a.byteHops += 100;
    a.byteRouters += 150;
    b.byteHops += 200;
    b.byteRouters += 300;
    EXPECT_DOUBLE_EQ(m.total(b, 0), 2.0 * m.total(a, 0));
    EXPECT_GT(m.total(a, 10), m.total(a, 0));
}

// --- Report formatting ---

TEST(Report, TableAlignsAndRenders)
{
    Table t({"name", "value"});
    t.cell("foo").cell(3.14159, 2).endRow();
    t.cell("barbaz").cell(std::uint64_t{42}).endRow();
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("------"), std::string::npos);
}

TEST(StatsReport, DumpsEveryGroup)
{
    ExperimentConfig cfg;
    cfg.scale = 0.25;
    cfg.config.protocol = Protocol::predicted;
    cfg.config.predictor = PredictorKind::sp;
    ExperimentResult r = runExperiment("ocean", cfg);
    const std::string s = statsToString(r.run, "x");
    for (const char *key :
         {"x.ticks", "x.mem.misses", "x.mem.communicating_misses",
          "x.pred.sufficient", "x.pred.sufficient_by_source.history",
          "x.sp.epochs_started", "x.noc.bytes",
          "x.noc.bytes_by_class.data", "x.sync.sync_points"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
    // Values match the run result.
    std::istringstream is(s);
    std::string name;
    double value = 0;
    bool found = false;
    while (is >> name >> value) {
        if (name == "x.mem.misses") {
            EXPECT_EQ(static_cast<std::uint64_t>(value),
                      r.run.mem.misses.value());
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

// --- Experiment harness ---

TEST(Experiment, UnknownWorkloadDies)
{
    ExperimentConfig cfg;
    EXPECT_DEATH({ runExperiment("not-a-workload", cfg); },
                 "unknown workload");
}

TEST(Experiment, DeterministicResults)
{
    ExperimentConfig cfg;
    cfg.scale = 0.25;
    ExperimentResult a = runExperiment("vips", cfg);
    ExperimentResult b = runExperiment("vips", cfg);
    EXPECT_EQ(a.run.ticks, b.run.ticks);
    EXPECT_EQ(a.run.mem.misses.value(), b.run.mem.misses.value());
    EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(Experiment, MetricsAreFinite)
{
    ExperimentConfig cfg;
    cfg.scale = 0.25;
    cfg.config.protocol = Protocol::predicted;
    cfg.config.predictor = PredictorKind::sp;
    ExperimentResult r = runExperiment("ocean", cfg);
    EXPECT_GT(r.commMissFraction(), 0.0);
    EXPECT_LT(r.commMissFraction(), 1.0);
    EXPECT_GT(r.avgMissLatency(), 0.0);
    EXPECT_GT(r.bytesPerMiss(), 0.0);
    EXPECT_GT(r.predictionAccuracy(), 0.0);
    EXPECT_LE(r.predictionAccuracy(), 1.0);
    EXPECT_GT(r.energy, 0.0);
}
