/**
 * @file
 * System-size generality: the machine, protocols and workloads are
 * parameterized by core count, mesh shape and directory sharer
 * format; 4-core (2x2) through 256-core (16x16) systems — square or
 * rectangular — must work end to end, not just the paper's 16-core
 * 4x4 configuration.
 */

#include <gtest/gtest.h>

#include <string>

#include "analysis/experiment.hh"
#include "harness.hh"

using namespace spp;
using namespace spp::test;

namespace {

Config
sized(unsigned cores, unsigned x, unsigned y,
      SharerFormat fmt = SharerFormat::full,
      Protocol proto = Protocol::directory,
      PredictorKind kind = PredictorKind::none)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.numCores = cores;
    cfg.meshX = x;
    cfg.meshY = y;
    cfg.sharerFormat = fmt;
    cfg.protocol = proto;
    cfg.predictor = kind;
    return cfg;
}

struct SizeParam
{
    unsigned cores, x, y;
    SharerFormat fmt;
};

class MeshSizes : public ::testing::TestWithParam<SizeParam>
{};

} // namespace

TEST_P(MeshSizes, ProtocolScenariosHold)
{
    const auto [cores, x, y, fmt] = GetParam();
    const std::pair<Protocol, PredictorKind> protos[] = {
        {Protocol::directory, PredictorKind::none},
        {Protocol::broadcast, PredictorKind::none},
        {Protocol::predicted, PredictorKind::sp},
        {Protocol::multicast, PredictorKind::sp},
    };
    for (const auto &[proto, kind] : protos) {
        ProtoHarness h(sized(cores, x, y, fmt, proto, kind));
        h.access(0, 0x10000, true);
        AccessOutcome out = h.access(cores - 1, 0x10000, false);
        EXPECT_TRUE(out.communicating) << toString(proto);
        // The modified copy is always fetched from its exact owner,
        // whatever the sharer encoding.
        EXPECT_EQ(out.servicedBy, CoreSet{0}) << toString(proto);
        if (cores > 2) {
            AccessOutcome w = h.access(1, 0x10000, true);
            EXPECT_TRUE(w.communicating) << toString(proto);
        }
        h.sys->checkCoherence();
        if (auto *d = h.dir())
            d->checkDirectory();
    }
}

TEST_P(MeshSizes, WorkloadRunsEndToEnd)
{
    const auto [cores, x, y, fmt] = GetParam();
    if (cores > 64)
        GTEST_SKIP() << "256-core end-to-end runs live in the bench "
                        "suite (fuzz_protocol --cores 256)";
    ExperimentConfig cfg;
    cfg.scale = 0.2;
    cfg.config.protocol = Protocol::predicted;
    cfg.config.predictor = PredictorKind::sp;
    cfg.tweak = [cores = cores, x = x, y = y, fmt = fmt](Config &c) {
        c.numCores = cores;
        c.meshX = x;
        c.meshY = y;
        c.sharerFormat = fmt;
        c.l2Bytes = 128 * 1024;
        c.l1Bytes = 4 * 1024;
    };
    ExperimentResult r = runExperiment("ocean", cfg);
    EXPECT_GT(r.run.ticks, 0u);
    EXPECT_GT(r.run.mem.communicatingMisses.value(), 0u);
    EXPECT_GT(r.run.mem.predictionsSufficient.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshSizes,
    ::testing::Values(
        SizeParam{4, 2, 2, SharerFormat::full},
        SizeParam{8, 4, 2, SharerFormat::full},
        SizeParam{16, 4, 4, SharerFormat::full},
        SizeParam{16, 4, 4, SharerFormat::coarse},
        SizeParam{16, 4, 4, SharerFormat::limited},
        SizeParam{32, 8, 4, SharerFormat::full},
        SizeParam{64, 8, 8, SharerFormat::full},
        SizeParam{64, 8, 8, SharerFormat::coarse},
        SizeParam{64, 8, 8, SharerFormat::limited},
        SizeParam{64, 16, 4, SharerFormat::full},
        SizeParam{256, 16, 16, SharerFormat::full},
        SizeParam{256, 16, 16, SharerFormat::coarse},
        SizeParam{256, 16, 16, SharerFormat::limited}),
    [](const auto &info) {
        std::string name = "c" + std::to_string(info.param.cores) +
            "x" + std::to_string(info.param.x) + "_" +
            toString(info.param.fmt);
        return name;
    });

TEST(MeshSizes, SignatureWidthFollowsCoreCount)
{
    // A 64-core system's signatures span all 64 bits.
    Config cfg = sized(64, 8, 8, SharerFormat::full,
                       Protocol::predicted, PredictorKind::sp);
    ProtoHarness h(cfg);
    h.access(63, 0x10000, true);
    AccessOutcome out = h.access(0, 0x10000, false);
    EXPECT_EQ(out.servicedBy, CoreSet{63});
}

TEST(MeshSizes, KilocoreHarnessScenario)
{
    // The compile-time ceiling itself: 1024 cores on a 32x32 mesh.
    Config cfg = sized(1024, 32, 32, SharerFormat::coarse);
    ProtoHarness h(cfg);
    h.access(0, 0x10000, true);
    AccessOutcome out = h.access(1023, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}
