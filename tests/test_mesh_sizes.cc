/**
 * @file
 * System-size generality: the machine, protocols and workloads are
 * parameterized by core count and mesh shape; 4-core (2x2) and
 * 64-core (8x8) systems must work end to end, not just the paper's
 * 16-core 4x4 configuration.
 */

#include <gtest/gtest.h>

#include "analysis/experiment.hh"
#include "harness.hh"

using namespace spp;
using namespace spp::test;

namespace {

Config
sized(unsigned cores, unsigned x, unsigned y,
      Protocol proto = Protocol::directory,
      PredictorKind kind = PredictorKind::none)
{
    Config cfg = ProtoHarness::smallConfig();
    cfg.numCores = cores;
    cfg.meshX = x;
    cfg.meshY = y;
    cfg.protocol = proto;
    cfg.predictor = kind;
    return cfg;
}

struct SizeParam
{
    unsigned cores, x, y;
};

class MeshSizes : public ::testing::TestWithParam<SizeParam>
{};

} // namespace

TEST_P(MeshSizes, ProtocolScenariosHold)
{
    const auto [cores, x, y] = GetParam();
    ProtoHarness h(sized(cores, x, y));
    h.access(0, 0x10000, true);
    AccessOutcome out = h.access(cores - 1, 0x10000, false);
    EXPECT_TRUE(out.communicating);
    EXPECT_EQ(out.servicedBy, CoreSet{0});
    if (cores > 2) {
        AccessOutcome w = h.access(1, 0x10000, true);
        EXPECT_TRUE(w.communicating);
    }
    h.sys->checkCoherence();
    h.dir()->checkDirectory();
}

TEST_P(MeshSizes, WorkloadRunsEndToEnd)
{
    const auto [cores, x, y] = GetParam();
    ExperimentConfig cfg;
    cfg.scale = 0.2;
    cfg.config.protocol = Protocol::predicted;
    cfg.config.predictor = PredictorKind::sp;
    cfg.tweak = [cores = cores, x = x, y = y](Config &c) {
        c.numCores = cores;
        c.meshX = x;
        c.meshY = y;
        c.l2Bytes = 128 * 1024;
        c.l1Bytes = 4 * 1024;
    };
    ExperimentResult r = runExperiment("ocean", cfg);
    EXPECT_GT(r.run.ticks, 0u);
    EXPECT_GT(r.run.mem.communicatingMisses.value(), 0u);
    EXPECT_GT(r.run.mem.predictionsSufficient.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshSizes,
    ::testing::Values(SizeParam{4, 2, 2}, SizeParam{8, 4, 2},
                      SizeParam{16, 4, 4}, SizeParam{32, 8, 4},
                      SizeParam{64, 8, 8}),
    [](const auto &info) {
        return "c" + std::to_string(info.param.cores);
    });

TEST(MeshSizes, SignatureWidthFollowsCoreCount)
{
    // A 64-core system's signatures span all 64 bits.
    Config cfg = sized(64, 8, 8, Protocol::predicted,
                       PredictorKind::sp);
    ProtoHarness h(cfg);
    h.access(63, 0x10000, true);
    AccessOutcome out = h.access(0, 0x10000, false);
    EXPECT_EQ(out.servicedBy, CoreSet{63});
}
