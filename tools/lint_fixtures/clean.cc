// Lint self-test fixture: idiomatic repo patterns that must NOT trip
// any rule in tools/lint_sim.py (false-positive guard). Never
// compiled.

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

void
clean()
{
    // Unordered lookup (not iteration) is fine.
    std::unordered_map<int, int> m;
    m.emplace(1, 2);
    auto it = m.find(1);
    (void)it;

    // Ordered iteration is fine.
    std::map<int, int> sorted;
    for (const auto &kv : sorted)
        (void)kv;

    // An annotated unordered fold is allowed when commutative.
    // lint: allow(unordered-iter) — commutative fold.
    for (const auto &kv : m)
        (void)kv;

    // Smart pointers and containers, not raw new/delete.
    auto owned = std::make_unique<int>(7);
    std::vector<int> grow;
    grow.push_back(*owned);

    // Words *containing* the banned tokens must not match.
    int renewal = 0;     // "new" inside an identifier
    int deleted_ok = 1;  // "delete" inside an identifier
    (void)renewal;
    (void)deleted_ok;

    // A string mentioning std::cout is data, not I/O.
    const char *doc = "never write std::cout in src/";
    (void)doc;
}
