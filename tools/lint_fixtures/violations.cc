// Lint self-test fixture: every rule in tools/lint_sim.py must fire
// at least once on this file. Never compiled.

#include <cstdio>
#include <functional>
#include <random>
#include <unordered_map>

void
violations()
{
    std::unordered_map<int, int> m;
    for (const auto &kv : m) // unordered-iter
        (void)kv;

    int *p = new int(7); // raw-new-delete
    delete p;            // raw-new-delete

    std::function<void()> f = [] {}; // std-function
    f();

    (void)rand();         // raw-random
    std::mt19937 rng(42); // raw-random
    (void)rng();

    std::printf("hello\n"); // std-io
}
