#!/usr/bin/env python3
"""Render a performance/accuracy trajectory dashboard from committed
benchmark artifacts, and validate attribution artifacts for CI.

Two modes:

  bench_dashboard.py [--out dashboard.html] [--manifests DIR]
      Walks the git history of every committed BENCH_*.json at the
      repository root (git log + git show, no checkout needed), builds
      a per-file trajectory of throughput/wall-time across commits,
      and renders both a text table (stdout) and a self-contained HTML
      artifact with inline SVG sparklines. When --manifests points at
      a directory of telemetry *.manifest.json sidecars, the current
      run's per-label results and phase timings are appended as an
      extra section so a CI run can publish "history + this run" in
      one artifact.

  bench_dashboard.py --validate-attribution FILE
      Structural schema check for spp.attribution.v1 documents
      (emitted by --attribution runs): required fields, rank ordering,
      score consistency, totals vs. per-entry accounting. Exits
      non-zero with a message on the first violation; prints a one-
      line summary on success. Used by the CI attribution-smoke job.

Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import html
import json
import os
import subprocess
import sys

# --------------------------------------------------------------------
# Attribution schema validation
# --------------------------------------------------------------------

ATTR_SCHEMA = "spp.attribution.v1"
STAT_FIELDS = (
    "correct", "over", "under", "unpredicted", "wasted_bytes",
    "under_ticks", "messages", "noc_bytes", "score",
)
ENTRY_FIELDS = (
    "rank", "sync", "sync_type", "sync_static", "sync_epoch",
    "region", "core", "stats",
)


def fail(msg):
    print(f"bench_dashboard: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(stats, where):
    for f in STAT_FIELDS:
        if f not in stats:
            fail(f"{where}: missing stats field '{f}'")
        if not isinstance(stats[f], (int, float)) or stats[f] < 0:
            fail(f"{where}: stats field '{f}' not a non-negative "
                 f"number: {stats[f]!r}")
    want = (stats["wasted_bytes"] + stats["noc_bytes"]
            + stats["under_ticks"])
    if stats["score"] != want:
        fail(f"{where}: score {stats['score']} != wasted_bytes + "
             f"noc_bytes + under_ticks = {want}")


def validate_attribution(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != ATTR_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {ATTR_SCHEMA!r}")
    opts = doc.get("options")
    if not isinstance(opts, dict):
        fail("missing 'options' object")
    for k in ("top_k", "region_bytes"):
        if not isinstance(opts.get(k), (int, float)) or opts[k] <= 0:
            fail(f"options.{k} missing or non-positive")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        fail("missing 'entries' array")
    if len(entries) > opts["top_k"]:
        fail(f"{len(entries)} entries exceed top_k={opts['top_k']}")
    prev_score = None
    for i, e in enumerate(entries):
        where = f"entries[{i}]"
        for f in ENTRY_FIELDS:
            if f not in e:
                fail(f"{where}: missing field '{f}'")
        if e["rank"] != i + 1:
            fail(f"{where}: rank {e['rank']} != {i + 1}")
        for f in ("region", "sync_static"):
            if not str(e[f]).startswith("0x"):
                fail(f"{where}: {f} not a hex string: {e[f]!r}")
        check_stats(e["stats"], where)
        score = e["stats"]["score"]
        if prev_score is not None and score > prev_score:
            fail(f"{where}: score {score} out of order "
                 f"(previous {prev_score})")
        prev_score = score
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        fail("missing 'totals' object")
    check_stats(totals, "totals")
    # Entries plus overflow must account for every decision and byte.
    acc = {f: 0 for f in STAT_FIELDS}
    for e in entries:
        for f in STAT_FIELDS:
            acc[f] += e["stats"][f]
    overflow = doc.get("overflow")
    if overflow is not None:
        if not isinstance(overflow.get("keys"), (int, float)):
            fail("overflow.keys missing")
        check_stats(overflow["stats"], "overflow")
        for f in STAT_FIELDS:
            acc[f] += overflow["stats"][f]
    for f in STAT_FIELDS:
        if f == "score":
            continue
        if acc[f] != totals[f]:
            fail(f"entries+overflow {f} = {acc[f]} != totals "
                 f"{totals[f]}")
    print(f"bench_dashboard: OK: {path}: {len(entries)} entries, "
          f"{int(totals['messages'])} messages, "
          f"{int(totals['wasted_bytes'])} wasted bytes")


# --------------------------------------------------------------------
# Git-history trajectory
# --------------------------------------------------------------------

def git(repo, *args):
    out = subprocess.run(
        ["git", "-C", repo, *args], capture_output=True, text=True)
    if out.returncode != 0:
        return None
    return out.stdout


def bench_files(repo):
    out = git(repo, "ls-files", "BENCH_*.json")
    return out.split() if out else []


def history(repo, path):
    """Oldest-first [(short_rev, date, subject, doc), ...] for one
    committed benchmark file."""
    log = git(repo, "log", "--follow", "--format=%h%x09%as%x09%s",
              "--", path)
    rows = []
    for line in reversed((log or "").strip().splitlines()):
        rev, date, subject = line.split("\t", 2)
        blob = git(repo, "show", f"{rev}:{path}")
        if blob is None:
            continue                      # file absent at this rev
        try:
            doc = json.loads(blob)
        except json.JSONDecodeError:
            continue
        rows.append((rev, date, subject, doc))
    return rows


def metric_of(doc):
    """(events_per_sec, wall_ms, attr_overhead_pct|None) from one
    BENCH_*.json document; tolerant of older schemas."""
    totals = doc.get("totals", {})
    return (totals.get("events_per_sec"), totals.get("wall_ms"),
            doc.get("attr_overhead_pct"))


def sparkline(values, width=220, height=36):
    """Inline SVG sparkline; tolerates <2 points and flat series."""
    pts = [v for v in values if v is not None]
    if len(pts) < 2:
        return "<svg width='%d' height='%d'></svg>" % (width, height)
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    step = width / (len(pts) - 1)
    coords = []
    for i, v in enumerate(pts):
        x = i * step
        y = height - 4 - (v - lo) / span * (height - 8)
        coords.append(f"{x:.1f},{y:.1f}")
    return ("<svg width='%d' height='%d'>"
            "<polyline fill='none' stroke='#2a7' stroke-width='2' "
            "points='%s'/></svg>" % (width, height, " ".join(coords)))


def fmt(v, unit=""):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:,.1f}{unit}"
    return f"{v}{unit}"


def load_manifests(mdir):
    rows = []
    for path in sorted(glob.glob(os.path.join(mdir,
                                              "*.manifest.json"))):
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        rows.append(doc)
    return rows


def render(repo, out_path, manifest_dir):
    sections = []
    text_lines = []
    for path in bench_files(repo):
        rows = history(repo, path)
        if not rows:
            continue
        eps = [metric_of(d)[0] for _, _, _, d in rows]
        text_lines.append(f"\n== {path} ==")
        text_lines.append(f"{'rev':<10}{'date':<12}"
                          f"{'events/sec':>14}{'wall ms':>10}"
                          f"{'attr ov%':>9}  subject")
        trs = []
        for rev, date, subject, doc in rows:
            e, w, a = metric_of(doc)
            text_lines.append(
                f"{rev:<10}{date:<12}{fmt(e):>14}{fmt(w):>10}"
                f"{fmt(a):>9}  {subject[:50]}")
            trs.append(
                "<tr><td><code>%s</code></td><td>%s</td>"
                "<td class='n'>%s</td><td class='n'>%s</td>"
                "<td class='n'>%s</td><td>%s</td></tr>"
                % (rev, date, fmt(e), fmt(w), fmt(a),
                   html.escape(subject)))
        sections.append(
            "<h2>%s</h2><p>events/sec trajectory: %s</p>"
            "<table><tr><th>rev</th><th>date</th>"
            "<th>events/sec</th><th>wall ms</th>"
            "<th>attr&nbsp;ov%%</th><th>commit</th></tr>%s</table>"
            % (html.escape(path), sparkline(eps), "".join(trs)))

    if manifest_dir:
        mrows = load_manifests(manifest_dir)
        if mrows:
            text_lines.append(f"\n== run manifests "
                              f"({manifest_dir}) ==")
            trs = []
            for m in mrows:
                res = m.get("result", {})
                phases = m.get("phases", {})
                run_ms = phases.get("run")
                label = m.get("label", "?")
                text_lines.append(
                    f"{label:<34}{fmt(res.get('events')):>12}"
                    f"{fmt(res.get('ticks')):>12}"
                    f"{fmt(run_ms, ' ms'):>12}")
                trs.append(
                    "<tr><td>%s</td><td class='n'>%s</td>"
                    "<td class='n'>%s</td><td class='n'>%s</td></tr>"
                    % (html.escape(label), fmt(res.get("events")),
                       fmt(res.get("ticks")), fmt(run_ms, " ms")))
            sections.append(
                "<h2>Run manifests (%s)</h2><table><tr>"
                "<th>label</th><th>events</th><th>ticks</th>"
                "<th>run</th></tr>%s</table>"
                % (html.escape(manifest_dir), "".join(trs)))

    print("\n".join(text_lines) if text_lines
          else "bench_dashboard: no committed BENCH_*.json found")
    if out_path:
        head = git(repo, "rev-parse", "--short", "HEAD") or "?"
        page = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                "<title>spp bench dashboard</title><style>"
                "body{font:14px sans-serif;margin:2em;}"
                "table{border-collapse:collapse;}"
                "td,th{border:1px solid #ccc;padding:4px 8px;}"
                "td.n{text-align:right;font-variant-numeric:"
                "tabular-nums;}</style></head><body>"
                "<h1>spp bench dashboard</h1>"
                "<p>generated at HEAD <code>%s</code></p>%s"
                "</body></html>"
                % (head.strip(), "".join(sections)))
        with open(out_path, "w", encoding="utf-8") as f:
            f.write(page)
        print(f"bench_dashboard: wrote {out_path}")


def main():
    ap = argparse.ArgumentParser(
        description="benchmark trajectory dashboard / attribution "
                    "artifact validator")
    ap.add_argument("--repo", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--out", default=None,
                    help="write an HTML dashboard to this path")
    ap.add_argument("--manifests", default=None,
                    help="directory of telemetry *.manifest.json to "
                         "append as a current-run section")
    ap.add_argument("--validate-attribution", metavar="FILE",
                    default=None,
                    help="validate one attribution.json and exit")
    args = ap.parse_args()
    if args.validate_attribution:
        validate_attribution(args.validate_attribution)
        return
    render(args.repo, args.out, args.manifests)


if __name__ == "__main__":
    main()
