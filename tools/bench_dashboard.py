#!/usr/bin/env python3
"""Render a performance/accuracy trajectory dashboard from committed
benchmark artifacts, and validate attribution artifacts for CI.

Two modes:

  bench_dashboard.py [--out dashboard.html] [--manifests DIR]
      Walks the git history of every committed BENCH_*.json at the
      repository root (git log + git show, no checkout needed), builds
      a per-file trajectory of throughput/wall-time across commits,
      and renders both a text table (stdout) and a self-contained HTML
      artifact with inline SVG sparklines. When --manifests points at
      a directory of telemetry *.manifest.json sidecars, the current
      run's per-label results and phase timings are appended as an
      extra section so a CI run can publish "history + this run" in
      one artifact.

  bench_dashboard.py --validate-attribution FILE
      Structural schema check for spp.attribution.v1 documents
      (emitted by --attribution runs): required fields, rank ordering,
      score consistency, totals vs. per-entry accounting. Exits
      non-zero with a message on the first violation; prints a one-
      line summary on success. Used by the CI attribution-smoke job.

  bench_dashboard.py --self-test
      Runs the trajectory extractor over a synthetic history covering
      every BENCH_kernel.json schema generation (v1 through v4) plus
      malformed documents, asserting that every revision yields a row
      (metrics or an explicit note — never a crash, never a silent
      drop). Registered in ctest next to the lint self-test.

The history walk is schema-tolerant by construction: committed
BENCH_*.json files span schema generations (v1 had bare totals, v2
added per-cell arrays, v3 added the profiler cells and overhead
ratios, v4 the replay cell and replay_speedup_pct), and old
revisions are immutable, so the extractor takes what each document
has and renders '-' for what it lacks. A revision whose blob does
not parse, or parses to something other than an object, still gets a
row with an explanatory note.

Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import html
import json
import os
import subprocess
import sys

# --------------------------------------------------------------------
# Attribution schema validation
# --------------------------------------------------------------------

ATTR_SCHEMA = "spp.attribution.v1"
STAT_FIELDS = (
    "correct", "over", "under", "unpredicted", "wasted_bytes",
    "under_ticks", "messages", "noc_bytes", "score",
)
ENTRY_FIELDS = (
    "rank", "sync", "sync_type", "sync_static", "sync_epoch",
    "region", "core", "stats",
)


def fail(msg):
    print(f"bench_dashboard: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(stats, where):
    for f in STAT_FIELDS:
        if f not in stats:
            fail(f"{where}: missing stats field '{f}'")
        if not isinstance(stats[f], (int, float)) or stats[f] < 0:
            fail(f"{where}: stats field '{f}' not a non-negative "
                 f"number: {stats[f]!r}")
    want = (stats["wasted_bytes"] + stats["noc_bytes"]
            + stats["under_ticks"])
    if stats["score"] != want:
        fail(f"{where}: score {stats['score']} != wasted_bytes + "
             f"noc_bytes + under_ticks = {want}")


def validate_attribution(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != ATTR_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {ATTR_SCHEMA!r}")
    opts = doc.get("options")
    if not isinstance(opts, dict):
        fail("missing 'options' object")
    for k in ("top_k", "region_bytes"):
        if not isinstance(opts.get(k), (int, float)) or opts[k] <= 0:
            fail(f"options.{k} missing or non-positive")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        fail("missing 'entries' array")
    if len(entries) > opts["top_k"]:
        fail(f"{len(entries)} entries exceed top_k={opts['top_k']}")
    prev_score = None
    for i, e in enumerate(entries):
        where = f"entries[{i}]"
        for f in ENTRY_FIELDS:
            if f not in e:
                fail(f"{where}: missing field '{f}'")
        if e["rank"] != i + 1:
            fail(f"{where}: rank {e['rank']} != {i + 1}")
        for f in ("region", "sync_static"):
            if not str(e[f]).startswith("0x"):
                fail(f"{where}: {f} not a hex string: {e[f]!r}")
        check_stats(e["stats"], where)
        score = e["stats"]["score"]
        if prev_score is not None and score > prev_score:
            fail(f"{where}: score {score} out of order "
                 f"(previous {prev_score})")
        prev_score = score
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        fail("missing 'totals' object")
    check_stats(totals, "totals")
    # Entries plus overflow must account for every decision and byte.
    acc = {f: 0 for f in STAT_FIELDS}
    for e in entries:
        for f in STAT_FIELDS:
            acc[f] += e["stats"][f]
    overflow = doc.get("overflow")
    if overflow is not None:
        if not isinstance(overflow.get("keys"), (int, float)):
            fail("overflow.keys missing")
        check_stats(overflow["stats"], "overflow")
        for f in STAT_FIELDS:
            acc[f] += overflow["stats"][f]
    for f in STAT_FIELDS:
        if f == "score":
            continue
        if acc[f] != totals[f]:
            fail(f"entries+overflow {f} = {acc[f]} != totals "
                 f"{totals[f]}")
    print(f"bench_dashboard: OK: {path}: {len(entries)} entries, "
          f"{int(totals['messages'])} messages, "
          f"{int(totals['wasted_bytes'])} wasted bytes")


# --------------------------------------------------------------------
# Git-history trajectory
# --------------------------------------------------------------------

def git(repo, *args):
    out = subprocess.run(
        ["git", "-C", repo, *args], capture_output=True, text=True)
    if out.returncode != 0:
        return None
    return out.stdout


def bench_files(repo):
    out = git(repo, "ls-files", "BENCH_*.json")
    return out.split() if out else []


def parse_blob(blob):
    """(doc|None, note) for one revision's file content. A blob that
    does not parse — or parses to a non-object — yields a note
    instead of a document, so the revision still appears in the
    trajectory rather than silently vanishing."""
    try:
        doc = json.loads(blob)
    except json.JSONDecodeError as e:
        return None, f"unparseable JSON ({e.msg} at line {e.lineno})"
    if not isinstance(doc, dict):
        return None, (f"not a JSON object "
                      f"({type(doc).__name__} at top level)")
    return doc, ""


def history(repo, path):
    """Oldest-first [(short_rev, date, subject, doc|None, note), ...]
    for one committed benchmark file."""
    log = git(repo, "log", "--follow", "--format=%h%x09%as%x09%s",
              "--", path)
    rows = []
    for line in reversed((log or "").strip().splitlines()):
        rev, date, subject = line.split("\t", 2)
        blob = git(repo, "show", f"{rev}:{path}")
        if blob is None:
            continue                      # file absent at this rev
        doc, note = parse_blob(blob)
        rows.append((rev, date, subject, doc, note))
    return rows


def metric_of(doc):
    """(schema, events_per_sec, wall_ms, attr_overhead_pct|None)
    from one BENCH_*.json document; tolerant of every committed
    schema generation (v1: bare totals, no schema tag; v4: replay
    cell + replay_speedup_pct) and of malformed field types."""
    schema = doc.get("schema")
    if not isinstance(schema, str):
        schema = "v1"                     # pre-tag generation
    totals = doc.get("totals")
    if not isinstance(totals, dict):
        totals = {}
    def num(v):
        return v if isinstance(v, (int, float)) else None
    return (schema, num(totals.get("events_per_sec")),
            num(totals.get("wall_ms")),
            num(doc.get("attr_overhead_pct")))


def sparkline(values, width=220, height=36):
    """Inline SVG sparkline; tolerates <2 points and flat series."""
    pts = [v for v in values if v is not None]
    if len(pts) < 2:
        return "<svg width='%d' height='%d'></svg>" % (width, height)
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    step = width / (len(pts) - 1)
    coords = []
    for i, v in enumerate(pts):
        x = i * step
        y = height - 4 - (v - lo) / span * (height - 8)
        coords.append(f"{x:.1f},{y:.1f}")
    return ("<svg width='%d' height='%d'>"
            "<polyline fill='none' stroke='#2a7' stroke-width='2' "
            "points='%s'/></svg>" % (width, height, " ".join(coords)))


def fmt(v, unit=""):
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:,.1f}{unit}"
    return f"{v}{unit}"


def load_manifests(mdir):
    rows = []
    for path in sorted(glob.glob(os.path.join(mdir,
                                              "*.manifest.json"))):
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(doc, dict):
            rows.append(doc)
    return rows


def render(repo, out_path, manifest_dir):
    sections = []
    text_lines = []
    for path in bench_files(repo):
        rows = history(repo, path)
        if not rows:
            continue
        eps = [metric_of(d)[1] if d is not None else None
               for _, _, _, d, _ in rows]
        text_lines.append(f"\n== {path} ==")
        text_lines.append(f"{'rev':<10}{'date':<12}{'schema':<20}"
                          f"{'events/sec':>14}{'wall ms':>10}"
                          f"{'attr ov%':>9}  subject")
        trs = []
        for rev, date, subject, doc, note in rows:
            if doc is None:
                text_lines.append(
                    f"{rev:<10}{date:<12}[{note}]  {subject[:40]}")
                trs.append(
                    "<tr><td><code>%s</code></td><td>%s</td>"
                    "<td colspan='4'><em>%s</em></td><td>%s</td>"
                    "</tr>"
                    % (rev, date, html.escape(note),
                       html.escape(subject)))
                continue
            s, e, w, a = metric_of(doc)
            text_lines.append(
                f"{rev:<10}{date:<12}{s:<20}{fmt(e):>14}"
                f"{fmt(w):>10}{fmt(a):>9}  {subject[:50]}")
            trs.append(
                "<tr><td><code>%s</code></td><td>%s</td>"
                "<td>%s</td><td class='n'>%s</td>"
                "<td class='n'>%s</td>"
                "<td class='n'>%s</td><td>%s</td></tr>"
                % (rev, date, html.escape(s), fmt(e), fmt(w),
                   fmt(a), html.escape(subject)))
        sections.append(
            "<h2>%s</h2><p>events/sec trajectory: %s</p>"
            "<table><tr><th>rev</th><th>date</th><th>schema</th>"
            "<th>events/sec</th><th>wall ms</th>"
            "<th>attr&nbsp;ov%%</th><th>commit</th></tr>%s</table>"
            % (html.escape(path), sparkline(eps), "".join(trs)))

    if manifest_dir:
        mrows = load_manifests(manifest_dir)
        if mrows:
            text_lines.append(f"\n== run manifests "
                              f"({manifest_dir}) ==")
            trs = []
            for m in mrows:
                res = m.get("result")
                if not isinstance(res, dict):
                    res = {}
                phases = m.get("phases")
                if not isinstance(phases, dict):
                    phases = {}
                run_ms = phases.get("run")
                label = m.get("label", "?")
                text_lines.append(
                    f"{label:<34}{fmt(res.get('events')):>12}"
                    f"{fmt(res.get('ticks')):>12}"
                    f"{fmt(run_ms, ' ms'):>12}")
                trs.append(
                    "<tr><td>%s</td><td class='n'>%s</td>"
                    "<td class='n'>%s</td><td class='n'>%s</td></tr>"
                    % (html.escape(label), fmt(res.get("events")),
                       fmt(res.get("ticks")), fmt(run_ms, " ms")))
            sections.append(
                "<h2>Run manifests (%s)</h2><table><tr>"
                "<th>label</th><th>events</th><th>ticks</th>"
                "<th>run</th></tr>%s</table>"
                % (html.escape(manifest_dir), "".join(trs)))

    print("\n".join(text_lines) if text_lines
          else "bench_dashboard: no committed BENCH_*.json found")
    if out_path:
        head = git(repo, "rev-parse", "--short", "HEAD") or "?"
        page = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                "<title>spp bench dashboard</title><style>"
                "body{font:14px sans-serif;margin:2em;}"
                "table{border-collapse:collapse;}"
                "td,th{border:1px solid #ccc;padding:4px 8px;}"
                "td.n{text-align:right;font-variant-numeric:"
                "tabular-nums;}</style></head><body>"
                "<h1>spp bench dashboard</h1>"
                "<p>generated at HEAD <code>%s</code></p>%s"
                "</body></html>"
                % (head.strip(), "".join(sections)))
        with open(out_path, "w", encoding="utf-8") as f:
            f.write(page)
        print(f"bench_dashboard: wrote {out_path}")


# --------------------------------------------------------------------
# Self-test
# --------------------------------------------------------------------

def self_test():
    """Walk a synthetic blob history spanning every schema
    generation plus malformed inputs; every revision must yield
    either metrics or a note, never an exception or a dropped row."""
    v1 = json.dumps({"totals": {"events_per_sec": 1e6,
                                "wall_ms": 100.0}})
    v2 = json.dumps({"schema": "spp.perf_kernel.v2",
                     "cells": [{"workload": "ocean"}],
                     "totals": {"events_per_sec": 2e6,
                                "wall_ms": 90.0}})
    v3 = json.dumps({"schema": "spp.perf_kernel.v3",
                     "cells": [], "attr_overhead_pct": 7.5,
                     "prof_off_overhead_pct": 0.5,
                     "totals": {"events_per_sec": 3e6,
                                "wall_ms": 80.0}})
    v4 = json.dumps({"schema": "spp.perf_kernel.v4",
                     "cells": [{"workload": "ocean",
                                "replay": True}],
                     "attr_overhead_pct": 7.0,
                     "replay_speedup_pct": 1.2,
                     "totals": {"events_per_sec": 4e6,
                                "wall_ms": 70.0}})
    blobs = [
        ("v1-no-schema-tag", v1, True),
        ("v2", v2, True),
        ("v3", v3, True),
        ("v4-replay-cell", v4, True),
        ("truncated", v4[: len(v4) // 2], False),
        ("top-level-array", "[1, 2, 3]", False),
        ("top-level-string", '"oops"', False),
        ("empty-object", "{}", True),
        ("totals-not-a-dict", '{"totals": 42}', True),
        ("metrics-wrong-type",
         '{"totals": {"events_per_sec": "fast"}}', True),
    ]
    rows = 0
    eps = []
    for name, blob, want_doc in blobs:
        doc, note = parse_blob(blob)
        if (doc is not None) != want_doc:
            fail(f"self-test: {name}: parse_blob returned "
                 f"{'doc' if doc is not None else f'note {note!r}'}")
        if doc is None:
            if not note:
                fail(f"self-test: {name}: dropped without a note")
            rows += 1
            continue
        schema, e, w, a = metric_of(doc)
        eps.append(e)
        rows += 1
        fmt(e), fmt(w), fmt(a)            # render formatting
    if rows != len(blobs):
        fail(f"self-test: {rows} rows for {len(blobs)} revisions")
    if eps[:4] != [1e6, 2e6, 3e6, 4e6]:
        fail(f"self-test: trajectory metrics wrong: {eps[:4]}")
    schemas = [metric_of(json.loads(blob))[0]
               for _, blob, _ in blobs[:4]]
    if schemas != ["v1", "spp.perf_kernel.v2",
                   "spp.perf_kernel.v3", "spp.perf_kernel.v4"]:
        fail(f"self-test: schema tags wrong: {schemas}")
    sparkline(eps)                        # tolerates None gaps
    print(f"bench_dashboard: self-test OK: {rows} synthetic "
          f"revisions, every one rendered")


def main():
    ap = argparse.ArgumentParser(
        description="benchmark trajectory dashboard / attribution "
                    "artifact validator")
    ap.add_argument("--repo", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--out", default=None,
                    help="write an HTML dashboard to this path")
    ap.add_argument("--manifests", default=None,
                    help="directory of telemetry *.manifest.json to "
                         "append as a current-run section")
    ap.add_argument("--validate-attribution", metavar="FILE",
                    default=None,
                    help="validate one attribution.json and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="run the mixed-schema extractor self-test "
                         "and exit")
    args = ap.parse_args()
    if args.self_test:
        self_test()
        return
    if args.validate_attribution:
        validate_attribution(args.validate_attribution)
        return
    render(args.repo, args.out, args.manifests)


if __name__ == "__main__":
    main()
