#!/usr/bin/env python3
"""Project-specific lint for the simulator source tree.

Enforces repo invariants that clang-tidy cannot express (see
DESIGN.md §11 for the rationale behind each rule):

  unordered-iter   no iteration over std::unordered_map/unordered_set
                   in sim code — iteration order is libstdc++-version
                   dependent and would break run-to-run determinism.
                   Lookups are fine; range-for / begin() / iterators
                   are not.
  raw-new-delete   no raw `new` / `delete` in src/: event and MSHR
                   allocation goes through the pools (common/pool.hh),
                   everything else through containers or unique_ptr.
  std-function     no std::function on the hot path: the event kernel
                   uses InlineFn (fixed-size, no heap) — std::function
                   type-erases through an allocation.
  raw-random       no rand()/srand()/random_device/std::time/mt19937
                   outside common/rng.hh: all randomness must flow
                   from the seeded, reproducible Rng.
  std-io           no std::cout/cerr/printf in library code (src/):
                   output goes through common/logging.hh so --quiet
                   and test harnesses can silence it. Benches, tests
                   and tools are exempt.

A line may opt out with an adjacent justification comment, on the
same line or the line above:

    // lint: allow(unordered-iter) — commutative fold.

Usage:
  tools/lint_sim.py [--root DIR]        lint src/ (exit 1 on findings)
  tools/lint_sim.py --self-test         verify the rules against the
                                        fixtures in tools/lint_fixtures
  tools/lint_sim.py FILE...             lint specific files
"""

import argparse
import pathlib
import re
import sys

# Files whose whole job is an exemption (path suffixes, '/'-joined).
STD_IO_ALLOWED = (
    "common/logging.cc",    # the logging sink itself
    "analysis/report.cc",   # report emission is user-facing output
)
RAW_RANDOM_ALLOWED = (
    "common/rng.hh",        # the one sanctioned wrapper
    "telemetry/manifest.cc",  # wall-clock run stamp, not sim state
)

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")

# Each rule: (name, regex, explanation). Regexes run on
# comment-stripped lines, so matches in comments never fire.
RULES = [
    (
        "raw-new-delete",
        re.compile(r"(^|[^\w.])(new\s+[A-Za-z_:][\w:<>]*\s*[({[]|"
                   r"delete\s+[A-Za-z_(]|delete\[\])"),
        "raw new/delete; use the pools (common/pool.hh), containers "
        "or std::unique_ptr",
    ),
    (
        "std-function",
        re.compile(r"\bstd\s*::\s*function\s*<"),
        "std::function allocates and type-erases; use InlineFn "
        "(common/inline_fn.hh) or a template parameter",
    ),
    (
        "raw-random",
        re.compile(r"\b(?:std\s*::\s*)?(?:rand|srand)\s*\(|"
                   r"\bstd\s*::\s*(?:random_device|mt19937(?:_64)?|"
                   r"time)\b|[^\w.]time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
        "unseeded/global randomness or wall-clock time; use "
        "spp::Rng (common/rng.hh) so runs stay reproducible",
    ),
    (
        "std-io",
        re.compile(r"\bstd\s*::\s*(?:cout|cerr)\b|"
                   r"(?:^|[^\w.])(?:std\s*::\s*)?"
                   r"(?:printf|fprintf|puts)\s*\("),
        "direct console I/O in library code; route through "
        "common/logging.hh",
    ),
]

# unordered-iter is type-directed, not purely lexical: pass 1 collects
# every identifier declared as std::unordered_map/unordered_set across
# ALL linted files (members like `dir_` are declared in headers but
# iterated in .cc files), then pass 2 flags range-for or begin() over
# those names. Lookups — find/count/operator[]/`it != m.end()` — never
# match, and a vector<unordered_map<...>> member is not collected (the
# outer iteration is deterministic): the unordered token must open the
# declared type.
UNORDERED_DECL_RE = re.compile(
    r"^\s*(?:static\s+|const\s+|mutable\s+)*(?:std\s*::\s*)?"
    r"unordered_(?:map|set)\s*<.*>\s*&?(\w+)\s*[;={(,]")
UNORDERED_ITER_WHY = (
    "iteration over an unordered container (nondeterministic order); "
    "iterate a sorted copy or a deterministic container"
)


def collect_unordered_names(paths):
    names = set()
    for path in paths:
        try:
            raw = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        in_block = False
        for raw_line in raw.splitlines():
            code, in_block = strip_comments_and_strings(
                raw_line, in_block)
            for m in UNORDERED_DECL_RE.finditer(code):
                names.add(m.group(1))
    return names


def unordered_iter_regex(names):
    if not names:
        return None
    alt = "|".join(sorted(re.escape(n) for n in names))
    return re.compile(
        r"\bfor\s*\([^;)]*:[^)]*\b(?:%s)\b\s*\)|"
        r"\b(?:%s)\b\s*\.\s*(?:begin|cbegin)\s*\(" % (alt, alt))


def strip_comments_and_strings(line, in_block):
    """Blank out string/char literals and comments, preserving length
    where convenient. Returns (code, in_block)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if in_block:
            j = line.find("*/", i)
            if j < 0:
                return "".join(out), True
            i = j + 2
            in_block = False
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def allowed_rules(raw_line, prev_raw_line):
    """Rules suppressed for this line by lint: allow annotations."""
    names = set()
    for text in (raw_line, prev_raw_line):
        if text:
            names.update(ALLOW_RE.findall(text))
    return names


def path_exempt(rule, rel):
    posix = rel.replace("\\", "/")
    if rule == "std-io":
        return posix.endswith(STD_IO_ALLOWED)
    if rule == "raw-random":
        return posix.endswith(RAW_RANDOM_ALLOWED)
    return False


def lint_file(path, rel, findings, iter_rx=None):
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        findings.append((rel, 0, "io", str(e)))
        return
    rules = list(RULES)
    if iter_rx is not None:
        rules.append(("unordered-iter", iter_rx, UNORDERED_ITER_WHY))
    in_block = False
    prev_raw = ""
    for lineno, raw_line in enumerate(raw.splitlines(), 1):
        code, in_block = strip_comments_and_strings(raw_line, in_block)
        allows = allowed_rules(raw_line, prev_raw)
        prev_raw = raw_line
        if not code.strip():
            continue
        for name, rx, why in rules:
            if name in allows or path_exempt(name, rel):
                continue
            if rx.search(code):
                findings.append((rel, lineno, name, why))


def iter_sources(root):
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix in (".cc", ".hh", ".cpp", ".h"):
            yield path


def run_lint(paths, root):
    iter_rx = unordered_iter_regex(collect_unordered_names(paths))
    findings = []
    for path in paths:
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        lint_file(path, rel, findings, iter_rx)
    for rel, lineno, name, why in findings:
        print(f"{rel}:{lineno}: [{name}] {why}")
    return findings


def self_test(root):
    """The fixture pair proves every rule both fires and can pass."""
    fixtures = root / "tools" / "lint_fixtures"
    vio = fixtures / "violations.cc"
    cln = fixtures / "clean.cc"
    iter_rx = unordered_iter_regex(
        collect_unordered_names([vio, cln]))

    bad = []
    lint_file(vio, "violations.cc", bad, iter_rx)
    hit = {name for (_, _, name, _) in bad}
    expected = {name for (name, _, _) in RULES} | {"unordered-iter"}
    ok = True
    for name in sorted(expected - hit):
        print(f"self-test: rule '{name}' did not fire on "
              f"lint_fixtures/violations.cc")
        ok = False

    clean = []
    lint_file(cln, "clean.cc", clean, iter_rx)
    for rel, lineno, name, _ in clean:
        print(f"self-test: false positive [{name}] at "
              f"{rel}:{lineno} in lint_fixtures/clean.cc")
        ok = False

    print("self-test: " + ("PASS" if ok else "FAIL"))
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repo root (default: this script's ../..)")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("files", nargs="*")
    args = ap.parse_args()

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent

    if args.self_test:
        sys.exit(0 if self_test(root) else 1)

    paths = [pathlib.Path(f) for f in args.files] or \
        list(iter_sources(root))
    findings = run_lint(paths, root)
    if findings:
        print(f"{len(findings)} finding(s)")
        sys.exit(1)
    print(f"lint_sim: {len(paths)} files clean")


if __name__ == "__main__":
    main()
