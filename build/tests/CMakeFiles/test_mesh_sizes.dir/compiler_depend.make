# Empty compiler generated dependencies file for test_mesh_sizes.
# This may be replaced when dependencies are built.
