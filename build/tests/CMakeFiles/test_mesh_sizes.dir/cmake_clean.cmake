file(REMOVE_RECURSE
  "CMakeFiles/test_mesh_sizes.dir/test_mesh_sizes.cc.o"
  "CMakeFiles/test_mesh_sizes.dir/test_mesh_sizes.cc.o.d"
  "test_mesh_sizes"
  "test_mesh_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
