# Empty compiler generated dependencies file for test_protocol_multicast.
# This may be replaced when dependencies are built.
