file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_multicast.dir/test_protocol_multicast.cc.o"
  "CMakeFiles/test_protocol_multicast.dir/test_protocol_multicast.cc.o.d"
  "test_protocol_multicast"
  "test_protocol_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
