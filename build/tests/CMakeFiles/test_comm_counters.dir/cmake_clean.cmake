file(REMOVE_RECURSE
  "CMakeFiles/test_comm_counters.dir/test_comm_counters.cc.o"
  "CMakeFiles/test_comm_counters.dir/test_comm_counters.cc.o.d"
  "test_comm_counters"
  "test_comm_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
