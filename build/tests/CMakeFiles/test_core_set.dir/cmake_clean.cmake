file(REMOVE_RECURSE
  "CMakeFiles/test_core_set.dir/test_core_set.cc.o"
  "CMakeFiles/test_core_set.dir/test_core_set.cc.o.d"
  "test_core_set"
  "test_core_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
