file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_predicted.dir/test_protocol_predicted.cc.o"
  "CMakeFiles/test_protocol_predicted.dir/test_protocol_predicted.cc.o.d"
  "test_protocol_predicted"
  "test_protocol_predicted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_predicted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
