# Empty dependencies file for test_protocol_predicted.
# This may be replaced when dependencies are built.
