file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_broadcast.dir/test_protocol_broadcast.cc.o"
  "CMakeFiles/test_protocol_broadcast.dir/test_protocol_broadcast.cc.o.d"
  "test_protocol_broadcast"
  "test_protocol_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
