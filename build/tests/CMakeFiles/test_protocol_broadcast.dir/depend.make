# Empty dependencies file for test_protocol_broadcast.
# This may be replaced when dependencies are built.
