file(REMOVE_RECURSE
  "CMakeFiles/test_sp_predictor.dir/test_sp_predictor.cc.o"
  "CMakeFiles/test_sp_predictor.dir/test_sp_predictor.cc.o.d"
  "test_sp_predictor"
  "test_sp_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sp_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
