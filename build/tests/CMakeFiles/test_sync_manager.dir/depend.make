# Empty dependencies file for test_sync_manager.
# This may be replaced when dependencies are built.
