file(REMOVE_RECURSE
  "CMakeFiles/test_sync_manager.dir/test_sync_manager.cc.o"
  "CMakeFiles/test_sync_manager.dir/test_sync_manager.cc.o.d"
  "test_sync_manager"
  "test_sync_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
