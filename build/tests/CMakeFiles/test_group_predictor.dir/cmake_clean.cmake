file(REMOVE_RECURSE
  "CMakeFiles/test_group_predictor.dir/test_group_predictor.cc.o"
  "CMakeFiles/test_group_predictor.dir/test_group_predictor.cc.o.d"
  "test_group_predictor"
  "test_group_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
