# Empty dependencies file for test_group_predictor.
# This may be replaced when dependencies are built.
