file(REMOVE_RECURSE
  "CMakeFiles/test_line_lock.dir/test_line_lock.cc.o"
  "CMakeFiles/test_line_lock.dir/test_line_lock.cc.o.d"
  "test_line_lock"
  "test_line_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
