# Empty compiler generated dependencies file for test_line_lock.
# This may be replaced when dependencies are built.
