file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_directory.dir/test_protocol_directory.cc.o"
  "CMakeFiles/test_protocol_directory.dir/test_protocol_directory.cc.o.d"
  "test_protocol_directory"
  "test_protocol_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
