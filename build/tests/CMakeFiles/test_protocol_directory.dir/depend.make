# Empty dependencies file for test_protocol_directory.
# This may be replaced when dependencies are built.
