# Empty compiler generated dependencies file for predictor_compare.
# This may be replaced when dependencies are built.
