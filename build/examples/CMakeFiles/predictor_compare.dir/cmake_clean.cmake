file(REMOVE_RECURSE
  "CMakeFiles/predictor_compare.dir/predictor_compare.cpp.o"
  "CMakeFiles/predictor_compare.dir/predictor_compare.cpp.o.d"
  "predictor_compare"
  "predictor_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
