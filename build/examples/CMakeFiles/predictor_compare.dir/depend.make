# Empty dependencies file for predictor_compare.
# This may be replaced when dependencies are built.
