file(REMOVE_RECURSE
  "CMakeFiles/runner.dir/runner.cpp.o"
  "CMakeFiles/runner.dir/runner.cpp.o.d"
  "runner"
  "runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
