# Empty compiler generated dependencies file for runner.
# This may be replaced when dependencies are built.
