# Empty compiler generated dependencies file for spp.
# This may be replaced when dependencies are built.
