
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/event_trace.cc" "src/CMakeFiles/spp.dir/analysis/event_trace.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/event_trace.cc.o.d"
  "/root/repo/src/analysis/experiment.cc" "src/CMakeFiles/spp.dir/analysis/experiment.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/experiment.cc.o.d"
  "/root/repo/src/analysis/locality.cc" "src/CMakeFiles/spp.dir/analysis/locality.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/locality.cc.o.d"
  "/root/repo/src/analysis/patterns.cc" "src/CMakeFiles/spp.dir/analysis/patterns.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/patterns.cc.o.d"
  "/root/repo/src/analysis/profile.cc" "src/CMakeFiles/spp.dir/analysis/profile.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/profile.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/CMakeFiles/spp.dir/analysis/report.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/report.cc.o.d"
  "/root/repo/src/analysis/stats_report.cc" "src/CMakeFiles/spp.dir/analysis/stats_report.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/stats_report.cc.o.d"
  "/root/repo/src/analysis/trace.cc" "src/CMakeFiles/spp.dir/analysis/trace.cc.o" "gcc" "src/CMakeFiles/spp.dir/analysis/trace.cc.o.d"
  "/root/repo/src/coherence/broadcast_protocol.cc" "src/CMakeFiles/spp.dir/coherence/broadcast_protocol.cc.o" "gcc" "src/CMakeFiles/spp.dir/coherence/broadcast_protocol.cc.o.d"
  "/root/repo/src/coherence/directory_protocol.cc" "src/CMakeFiles/spp.dir/coherence/directory_protocol.cc.o" "gcc" "src/CMakeFiles/spp.dir/coherence/directory_protocol.cc.o.d"
  "/root/repo/src/coherence/mem_sys.cc" "src/CMakeFiles/spp.dir/coherence/mem_sys.cc.o" "gcc" "src/CMakeFiles/spp.dir/coherence/mem_sys.cc.o.d"
  "/root/repo/src/coherence/messages.cc" "src/CMakeFiles/spp.dir/coherence/messages.cc.o" "gcc" "src/CMakeFiles/spp.dir/coherence/messages.cc.o.d"
  "/root/repo/src/coherence/multicast_protocol.cc" "src/CMakeFiles/spp.dir/coherence/multicast_protocol.cc.o" "gcc" "src/CMakeFiles/spp.dir/coherence/multicast_protocol.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/spp.dir/common/config.cc.o" "gcc" "src/CMakeFiles/spp.dir/common/config.cc.o.d"
  "/root/repo/src/common/core_set.cc" "src/CMakeFiles/spp.dir/common/core_set.cc.o" "gcc" "src/CMakeFiles/spp.dir/common/core_set.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/spp.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/spp.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/spp.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/spp.dir/common/stats.cc.o.d"
  "/root/repo/src/core/sp_predictor.cc" "src/CMakeFiles/spp.dir/core/sp_predictor.cc.o" "gcc" "src/CMakeFiles/spp.dir/core/sp_predictor.cc.o.d"
  "/root/repo/src/core/sp_table.cc" "src/CMakeFiles/spp.dir/core/sp_table.cc.o" "gcc" "src/CMakeFiles/spp.dir/core/sp_table.cc.o.d"
  "/root/repo/src/event/event_queue.cc" "src/CMakeFiles/spp.dir/event/event_queue.cc.o" "gcc" "src/CMakeFiles/spp.dir/event/event_queue.cc.o.d"
  "/root/repo/src/mem/cache_array.cc" "src/CMakeFiles/spp.dir/mem/cache_array.cc.o" "gcc" "src/CMakeFiles/spp.dir/mem/cache_array.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/spp.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/spp.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/mesif.cc" "src/CMakeFiles/spp.dir/mem/mesif.cc.o" "gcc" "src/CMakeFiles/spp.dir/mem/mesif.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/spp.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/spp.dir/noc/mesh.cc.o.d"
  "/root/repo/src/predict/group_predictor.cc" "src/CMakeFiles/spp.dir/predict/group_predictor.cc.o" "gcc" "src/CMakeFiles/spp.dir/predict/group_predictor.cc.o.d"
  "/root/repo/src/sim/cmp_system.cc" "src/CMakeFiles/spp.dir/sim/cmp_system.cc.o" "gcc" "src/CMakeFiles/spp.dir/sim/cmp_system.cc.o.d"
  "/root/repo/src/sim/thread_context.cc" "src/CMakeFiles/spp.dir/sim/thread_context.cc.o" "gcc" "src/CMakeFiles/spp.dir/sim/thread_context.cc.o.d"
  "/root/repo/src/sync/sync_manager.cc" "src/CMakeFiles/spp.dir/sync/sync_manager.cc.o" "gcc" "src/CMakeFiles/spp.dir/sync/sync_manager.cc.o.d"
  "/root/repo/src/workload/parsec.cc" "src/CMakeFiles/spp.dir/workload/parsec.cc.o" "gcc" "src/CMakeFiles/spp.dir/workload/parsec.cc.o.d"
  "/root/repo/src/workload/patterns.cc" "src/CMakeFiles/spp.dir/workload/patterns.cc.o" "gcc" "src/CMakeFiles/spp.dir/workload/patterns.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/CMakeFiles/spp.dir/workload/registry.cc.o" "gcc" "src/CMakeFiles/spp.dir/workload/registry.cc.o.d"
  "/root/repo/src/workload/splash.cc" "src/CMakeFiles/spp.dir/workload/splash.cc.o" "gcc" "src/CMakeFiles/spp.dir/workload/splash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
