file(REMOVE_RECURSE
  "libspp.a"
)
