file(REMOVE_RECURSE
  "../bench/fig05_hotset_sizes"
  "../bench/fig05_hotset_sizes.pdb"
  "CMakeFiles/fig05_hotset_sizes.dir/fig05_hotset_sizes.cpp.o"
  "CMakeFiles/fig05_hotset_sizes.dir/fig05_hotset_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_hotset_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
