# Empty dependencies file for fig05_hotset_sizes.
# This may be replaced when dependencies are built.
