file(REMOVE_RECURSE
  "../bench/ablation_profile"
  "../bench/ablation_profile.pdb"
  "CMakeFiles/ablation_profile.dir/ablation_profile.cpp.o"
  "CMakeFiles/ablation_profile.dir/ablation_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
