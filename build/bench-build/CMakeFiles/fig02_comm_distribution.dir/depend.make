# Empty dependencies file for fig02_comm_distribution.
# This may be replaced when dependencies are built.
