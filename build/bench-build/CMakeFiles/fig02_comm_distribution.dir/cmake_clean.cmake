file(REMOVE_RECURSE
  "../bench/fig02_comm_distribution"
  "../bench/fig02_comm_distribution.pdb"
  "CMakeFiles/fig02_comm_distribution.dir/fig02_comm_distribution.cpp.o"
  "CMakeFiles/fig02_comm_distribution.dir/fig02_comm_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_comm_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
