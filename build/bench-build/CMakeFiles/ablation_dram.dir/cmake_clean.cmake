file(REMOVE_RECURSE
  "../bench/ablation_dram"
  "../bench/ablation_dram.pdb"
  "CMakeFiles/ablation_dram.dir/ablation_dram.cpp.o"
  "CMakeFiles/ablation_dram.dir/ablation_dram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
