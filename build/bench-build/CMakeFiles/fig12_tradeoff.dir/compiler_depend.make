# Empty compiler generated dependencies file for fig12_tradeoff.
# This may be replaced when dependencies are built.
