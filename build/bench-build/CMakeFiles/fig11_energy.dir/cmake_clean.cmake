file(REMOVE_RECURSE
  "../bench/fig11_energy"
  "../bench/fig11_energy.pdb"
  "CMakeFiles/fig11_energy.dir/fig11_energy.cpp.o"
  "CMakeFiles/fig11_energy.dir/fig11_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
