# Empty dependencies file for ablation_macroblock.
# This may be replaced when dependencies are built.
