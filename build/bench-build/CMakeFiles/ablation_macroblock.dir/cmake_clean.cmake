file(REMOVE_RECURSE
  "../bench/ablation_macroblock"
  "../bench/ablation_macroblock.pdb"
  "CMakeFiles/ablation_macroblock.dir/ablation_macroblock.cpp.o"
  "CMakeFiles/ablation_macroblock.dir/ablation_macroblock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_macroblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
