# Empty compiler generated dependencies file for fig09_bandwidth.
# This may be replaced when dependencies are built.
