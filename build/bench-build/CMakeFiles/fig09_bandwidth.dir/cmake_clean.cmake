file(REMOVE_RECURSE
  "../bench/fig09_bandwidth"
  "../bench/fig09_bandwidth.pdb"
  "CMakeFiles/fig09_bandwidth.dir/fig09_bandwidth.cpp.o"
  "CMakeFiles/fig09_bandwidth.dir/fig09_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
