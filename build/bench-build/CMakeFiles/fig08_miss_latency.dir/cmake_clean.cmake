file(REMOVE_RECURSE
  "../bench/fig08_miss_latency"
  "../bench/fig08_miss_latency.pdb"
  "CMakeFiles/fig08_miss_latency.dir/fig08_miss_latency.cpp.o"
  "CMakeFiles/fig08_miss_latency.dir/fig08_miss_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_miss_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
