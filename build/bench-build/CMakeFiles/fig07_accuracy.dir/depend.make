# Empty dependencies file for fig07_accuracy.
# This may be replaced when dependencies are built.
