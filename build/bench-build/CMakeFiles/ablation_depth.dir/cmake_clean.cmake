file(REMOVE_RECURSE
  "../bench/ablation_depth"
  "../bench/ablation_depth.pdb"
  "CMakeFiles/ablation_depth.dir/ablation_depth.cpp.o"
  "CMakeFiles/ablation_depth.dir/ablation_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
