file(REMOVE_RECURSE
  "../bench/fig01_comm_misses"
  "../bench/fig01_comm_misses.pdb"
  "CMakeFiles/fig01_comm_misses.dir/fig01_comm_misses.cpp.o"
  "CMakeFiles/fig01_comm_misses.dir/fig01_comm_misses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_comm_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
