# Empty compiler generated dependencies file for fig01_comm_misses.
# This may be replaced when dependencies are built.
