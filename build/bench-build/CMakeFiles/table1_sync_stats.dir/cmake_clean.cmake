file(REMOVE_RECURSE
  "../bench/table1_sync_stats"
  "../bench/table1_sync_stats.pdb"
  "CMakeFiles/table1_sync_stats.dir/table1_sync_stats.cpp.o"
  "CMakeFiles/table1_sync_stats.dir/table1_sync_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sync_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
