file(REMOVE_RECURSE
  "../bench/ext_multicast"
  "../bench/ext_multicast.pdb"
  "CMakeFiles/ext_multicast.dir/ext_multicast.cpp.o"
  "CMakeFiles/ext_multicast.dir/ext_multicast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
