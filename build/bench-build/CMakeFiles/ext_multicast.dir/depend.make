# Empty dependencies file for ext_multicast.
# This may be replaced when dependencies are built.
