# Empty dependencies file for ablation_fstate.
# This may be replaced when dependencies are built.
