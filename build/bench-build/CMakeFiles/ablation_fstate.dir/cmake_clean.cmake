file(REMOVE_RECURSE
  "../bench/ablation_fstate"
  "../bench/ablation_fstate.pdb"
  "CMakeFiles/ablation_fstate.dir/ablation_fstate.cpp.o"
  "CMakeFiles/ablation_fstate.dir/ablation_fstate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
