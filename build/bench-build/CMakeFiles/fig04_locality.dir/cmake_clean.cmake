file(REMOVE_RECURSE
  "../bench/fig04_locality"
  "../bench/fig04_locality.pdb"
  "CMakeFiles/fig04_locality.dir/fig04_locality.cpp.o"
  "CMakeFiles/fig04_locality.dir/fig04_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
