file(REMOVE_RECURSE
  "../bench/table5_setsize"
  "../bench/table5_setsize.pdb"
  "CMakeFiles/table5_setsize.dir/table5_setsize.cpp.o"
  "CMakeFiles/table5_setsize.dir/table5_setsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_setsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
