# Empty dependencies file for table5_setsize.
# This may be replaced when dependencies are built.
