file(REMOVE_RECURSE
  "../bench/fig10_exec_time"
  "../bench/fig10_exec_time.pdb"
  "CMakeFiles/fig10_exec_time.dir/fig10_exec_time.cpp.o"
  "CMakeFiles/fig10_exec_time.dir/fig10_exec_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
