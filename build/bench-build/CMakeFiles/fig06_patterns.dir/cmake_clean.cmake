file(REMOVE_RECURSE
  "../bench/fig06_patterns"
  "../bench/fig06_patterns.pdb"
  "CMakeFiles/fig06_patterns.dir/fig06_patterns.cpp.o"
  "CMakeFiles/fig06_patterns.dir/fig06_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
