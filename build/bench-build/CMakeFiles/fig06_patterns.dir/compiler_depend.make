# Empty compiler generated dependencies file for fig06_patterns.
# This may be replaced when dependencies are built.
