/**
 * @file
 * Characterization example (the paper's Section 3 study on one
 * workload): runs a workload under the directory protocol with
 * tracing and reports the communicating-miss ratio, communication
 * locality at three granularities, the hot-set size distribution,
 * hot-set patterns across dynamic epoch instances, and Table 1-style
 * sync-epoch statistics.
 *
 * Usage: characterize [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/epoch_stats.hh"
#include "analysis/experiment.hh"
#include "analysis/locality.hh"
#include "analysis/patterns.hh"
#include "analysis/report.hh"
#include "analysis/sweep.hh"

using namespace spp;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "bodytrack";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    ExperimentConfig cfg;
    cfg.scale = scale;
    cfg.collectTrace = true;
    // A single job, but routed through the sweep engine so the
    // example exercises the same code path as the bench drivers.
    ExperimentResult r = std::move(runSweep({{workload, cfg, ""}})[0]);
    const CommTrace &trace = *r.trace;

    std::printf("Characterization of '%s' (16 cores, directory "
                "MESIF)\n", workload.c_str());

    banner("Miss profile");
    std::printf("misses: %lu, communicating: %lu (%.1f%%), "
                "off-chip: %lu\n",
                static_cast<unsigned long>(r.run.mem.misses.value()),
                static_cast<unsigned long>(
                    r.run.mem.communicatingMisses.value()),
                100.0 * r.commMissFraction(),
                static_cast<unsigned long>(
                    r.run.mem.offChipMisses.value()));

    banner("Communication locality (cumulative % by top-k targets)");
    const LocalityCurve epoch = epochLocality(trace);
    const LocalityCurve whole = wholeRunLocality(trace);
    const LocalityCurve inst = instructionLocality(trace);
    Table lt({"k", "sync-epoch", "whole-run", "instruction"});
    for (unsigned k = 0; k < 8; ++k) {
        lt.cell(k + 1).cell(100.0 * epoch[k], 1)
            .cell(100.0 * whole[k], 1).cell(100.0 * inst[k], 1)
            .endRow();
    }
    lt.print();

    banner("Hot-set size distribution (10% threshold)");
    const auto dist = hotSetSizeDistribution(trace, 0.10);
    Table ht({"size", "fraction of epochs"});
    const char *labels[] = {"1", "2", "3", "4", ">=5"};
    for (unsigned i = 0; i < 5; ++i)
        ht.cell(labels[i]).cell(dist[i], 3).endRow();
    ht.print();

    banner("Hot-set patterns across dynamic instances");
    auto infos = classifyEpochPatterns(trace, 0.10, 8);
    auto hist = patternHistogram(infos);
    Table pt({"pattern", "static epochs"});
    for (const auto &[pattern, count] : hist)
        pt.cell(toString(pattern)).cell(count).endRow();
    pt.print();

    banner("Sync-epoch statistics (Table 1 style)");
    const EpochStats es = computeEpochStats(trace);
    std::printf("static critical sections: %u\n",
                es.staticCriticalSections);
    std::printf("static sync-epochs:       %u\n",
                es.staticSyncEpochs);
    std::printf("dynamic epochs per core:  %.0f\n",
                es.dynEpochsPerCore);
    return 0;
}
