/**
 * @file
 * spp runner: a small command-line front end for one-off experiment
 * runs — pick a workload, protocol, predictor and knobs; get the
 * full statistics dump.
 *
 * Usage:
 *   runner --workload ocean --protocol predicted --predictor sp
 *          [--scale 1.0] [--seed 1] [--entries N] [--filter]
 *          [--depth 2] [--threshold 0.10] [--list]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <iostream>

#include "analysis/experiment.hh"
#include "analysis/report.hh"
#include "analysis/stats_report.hh"
#include "workload/workload.hh"

using namespace spp;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload NAME] [--protocol dir|broadcast|"
        "predicted|multicast]\n"
        "          [--predictor sp|addr|inst|uni] [--scale S] "
        "[--seed N]\n"
        "          [--entries N] [--filter] [--depth D] "
        "[--threshold T] [--raw] [--list]\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "ocean";
    ExperimentConfig cfg;
    unsigned depth = 2;
    double threshold = 0.10;
    bool filter = false;
    bool raw = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--list") {
            for (const auto &spec : workloadRegistry())
                std::printf("%-14s (%s, input %s)\n",
                            spec.name.c_str(), spec.suite.c_str(),
                            spec.input.c_str());
            return 0;
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--protocol") {
            const std::string p = next();
            if (p == "dir" || p == "directory")
                cfg.config.protocol = Protocol::directory;
            else if (p == "broadcast")
                cfg.config.protocol = Protocol::broadcast;
            else if (p == "predicted")
                cfg.config.protocol = Protocol::predicted;
            else if (p == "multicast")
                cfg.config.protocol = Protocol::multicast;
            else
                usage(argv[0]);
        } else if (arg == "--predictor") {
            const std::string p = next();
            if (p == "sp")
                cfg.config.predictor = PredictorKind::sp;
            else if (p == "addr")
                cfg.config.predictor = PredictorKind::addr;
            else if (p == "inst")
                cfg.config.predictor = PredictorKind::inst;
            else if (p == "uni")
                cfg.config.predictor = PredictorKind::uni;
            else
                usage(argv[0]);
        } else if (arg == "--scale") {
            cfg.scale = std::atof(next());
        } else if (arg == "--seed") {
            cfg.config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--entries") {
            cfg.config.predictorEntries =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--filter") {
            filter = true;
        } else if (arg == "--raw") {
            raw = true;
        } else if (arg == "--depth") {
            depth = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--threshold") {
            threshold = std::atof(next());
        } else {
            usage(argv[0]);
        }
    }

    if ((cfg.config.protocol == Protocol::predicted ||
         cfg.config.protocol == Protocol::multicast) &&
        cfg.config.predictor == PredictorKind::none) {
        cfg.config.predictor = PredictorKind::sp;
    }
    cfg.tweak = [=](Config &c) {
        c.historyDepth = depth;
        c.hotThreshold = threshold;
        c.enableSharingFilter = filter;
    };

    ExperimentResult r = runExperiment(workload, cfg);
    const RunResult &run = r.run;

    if (raw) {
        // Machine-readable "name value" dump for scripts.
        dumpStats(std::cout, run);
        return 0;
    }

    std::printf("workload %s, protocol %s, predictor %s, scale %g, "
                "seed %lu\n",
                workload.c_str(), toString(cfg.config.protocol),
                toString(cfg.config.predictor), cfg.scale,
                static_cast<unsigned long>(cfg.config.seed));

    banner("Execution");
    std::printf("cycles                 %lu\n",
                static_cast<unsigned long>(run.ticks));
    std::printf("events executed        %lu\n",
                static_cast<unsigned long>(run.eventsExecuted));

    banner("Memory system");
    std::printf("accesses               %lu\n",
                static_cast<unsigned long>(run.mem.accesses.value()));
    std::printf("L1 hits                %lu\n",
                static_cast<unsigned long>(run.mem.l1Hits.value()));
    std::printf("L2 hits                %lu\n",
                static_cast<unsigned long>(run.mem.l2Hits.value()));
    std::printf("misses                 %lu\n",
                static_cast<unsigned long>(run.mem.misses.value()));
    std::printf("  communicating        %lu (%.1f%%)\n",
                static_cast<unsigned long>(
                    run.mem.communicatingMisses.value()),
                100.0 * r.commMissFraction());
    std::printf("  off-chip             %lu\n",
                static_cast<unsigned long>(
                    run.mem.offChipMisses.value()));
    std::printf("  upgrades             %lu\n",
                static_cast<unsigned long>(
                    run.mem.upgradeMisses.value()));
    std::printf("writebacks             %lu\n",
                static_cast<unsigned long>(
                    run.mem.writebacks.value()));
    std::printf("avg miss latency       %.1f cycles\n",
                run.mem.missLatency.mean());
    std::printf("  communicating        %.1f cycles\n",
                run.mem.commMissLatency.mean());
    std::printf("  non-communicating    %.1f cycles\n",
                run.mem.nonCommMissLatency.mean());

    if (cfg.config.predictor != PredictorKind::none) {
        banner("Prediction");
        std::printf("attempted              %lu\n",
                    static_cast<unsigned long>(
                        run.mem.predictionsAttempted.value()));
        std::printf("suppressed (filter)    %lu\n",
                    static_cast<unsigned long>(
                        run.mem.predictionsSuppressed.value()));
        std::printf("sufficient             %lu (%.1f%% of comm)\n",
                    static_cast<unsigned long>(
                        run.mem.predictionsSufficient.value()),
                    100.0 * r.predictionAccuracy());
        std::printf("avg predicted targets  %.2f\n",
                    run.mem.predictedTargets.mean());
        std::printf("avg actual targets     %.2f\n",
                    run.mem.actualTargets.mean());
        std::printf("predictor storage      %.2f KB\n",
                    static_cast<double>(run.predictorStorageBits) /
                        8.0 / 1024.0);
        std::printf("table accesses         %lu\n",
                    static_cast<unsigned long>(
                        run.predictorTableAccesses));
    }

    banner("NoC");
    std::printf("packets                %lu\n",
                static_cast<unsigned long>(run.noc.packets.value()));
    std::printf("bytes                  %lu (%.1f per miss)\n",
                static_cast<unsigned long>(run.noc.flitBytes.value()),
                r.bytesPerMiss());
    std::printf("avg packet latency     %.1f cycles\n",
                run.noc.packetLatency.mean());
    std::printf("snoop lookups          %lu\n",
                static_cast<unsigned long>(
                    run.mem.snoopLookups.value()));
    std::printf("energy (model units)   %.0f\n", r.energy);

    banner("Synchronization");
    std::printf("sync points            %lu\n",
                static_cast<unsigned long>(
                    run.sync.syncPoints.value()));
    std::printf("barriers released      %lu\n",
                static_cast<unsigned long>(
                    run.sync.barriersReleased.value()));
    std::printf("lock acquisitions      %lu (%lu contended)\n",
                static_cast<unsigned long>(
                    run.sync.lockAcquisitions.value()),
                static_cast<unsigned long>(
                    run.sync.lockContended.value()));
    return 0;
}
