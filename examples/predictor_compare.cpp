/**
 * @file
 * Predictor shoot-out: runs one workload under the directory
 * baseline, broadcast, and all four destination-set predictors (SP,
 * ADDR, INST, UNI), reporting the latency/bandwidth/storage
 * trade-off each scheme lands on (the Section 5.4 comparison).
 *
 * Usage: predictor_compare [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiment.hh"
#include "analysis/report.hh"

using namespace spp;

namespace {

void
row(Table &t, const char *name, const ExperimentResult &r,
    const ExperimentResult &dir)
{
    const double base_lat = dir.avgMissLatency();
    const double base_bpm = dir.bytesPerMiss();
    t.cell(name)
        .cell(r.avgMissLatency() / base_lat, 3)
        .cell(static_cast<double>(r.run.ticks) /
                  static_cast<double>(dir.run.ticks), 3)
        .cell(100.0 * (r.bytesPerMiss() - base_bpm) / base_bpm, 1)
        .cell(100.0 * r.predictionAccuracy(), 1)
        .cell(r.energy / dir.energy, 2)
        .cell(static_cast<double>(r.run.predictorStorageBits) /
                  8.0 / 1024.0, 2)
        .endRow();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "bodytrack";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    auto run = [&](Protocol proto, PredictorKind kind) {
        ExperimentConfig cfg;
        cfg.protocol = proto;
        cfg.predictor = kind;
        cfg.scale = scale;
        return runExperiment(workload, cfg);
    };

    std::printf("Predictor comparison on '%s'\n", workload.c_str());
    ExperimentResult dir = run(Protocol::directory,
                               PredictorKind::none);
    ExperimentResult bc = run(Protocol::broadcast,
                              PredictorKind::none);

    banner("Latency / bandwidth / storage trade-off "
           "(normalized to directory)");
    Table t({"scheme", "miss lat.", "exec time", "+bw/miss %",
             "accuracy %", "energy", "storage KB"});
    row(t, "directory", dir, dir);
    row(t, "broadcast", bc, dir);
    for (auto [name, kind] :
         {std::pair{"SP", PredictorKind::sp},
          std::pair{"ADDR", PredictorKind::addr},
          std::pair{"INST", PredictorKind::inst},
          std::pair{"UNI", PredictorKind::uni}}) {
        ExperimentResult r = run(Protocol::predicted, kind);
        row(t, name, r, dir);
    }
    t.print();

    std::printf("\n(SP should sit near ADDR/INST on latency and "
                "bandwidth at a fraction of the storage)\n");
    return 0;
}
