/**
 * @file
 * Predictor shoot-out: runs one workload under the directory
 * baseline, broadcast, and all four destination-set predictors (SP,
 * ADDR, INST, UNI), reporting the latency/bandwidth/storage
 * trade-off each scheme lands on (the Section 5.4 comparison).
 *
 * The six runs are submitted as one sweep, so --jobs N (or SPP_JOBS)
 * executes them concurrently; the table is byte-identical at any
 * thread count.
 *
 * Usage: predictor_compare [workload] [scale] [--jobs N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/report.hh"
#include "analysis/sweep.hh"

using namespace spp;

namespace {

void
row(Table &t, const char *name, const ExperimentResult &r,
    const ExperimentResult &dir)
{
    const double base_lat = dir.avgMissLatency();
    const double base_bpm = dir.bytesPerMiss();
    t.cell(name)
        .cell(r.avgMissLatency() / base_lat, 3)
        .cell(static_cast<double>(r.run.ticks) /
                  static_cast<double>(dir.run.ticks), 3)
        .cell(100.0 * (r.bytesPerMiss() - base_bpm) / base_bpm, 1)
        .cell(100.0 * r.predictionAccuracy(), 1)
        .cell(r.energy / dir.energy, 2)
        .cell(static_cast<double>(r.run.predictorStorageBits) /
                  8.0 / 1024.0, 2)
        .endRow();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "bodytrack";
    double scale = 1.0;
    unsigned jobs = 0;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "usage: %s [workload] [scale] "
                             "[--jobs N]\n", argv[0]);
                return 2;
            }
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            jobs = static_cast<unsigned>(std::atoi(arg + 7));
        } else if (positional == 0) {
            workload = arg;
            ++positional;
        } else if (positional == 1) {
            scale = std::atof(arg);
            ++positional;
        } else {
            std::fprintf(stderr, "usage: %s [workload] [scale] "
                         "[--jobs N]\n", argv[0]);
            return 2;
        }
    }

    auto config = [&](Protocol proto, PredictorKind kind) {
        ExperimentConfig cfg;
        cfg.config.protocol = proto;
        cfg.config.predictor = kind;
        cfg.scale = scale;
        return cfg;
    };

    const std::pair<const char *, PredictorKind> predictors[] = {
        {"SP", PredictorKind::sp},
        {"ADDR", PredictorKind::addr},
        {"INST", PredictorKind::inst},
        {"UNI", PredictorKind::uni}};

    std::vector<SweepJob> sweep_jobs;
    sweep_jobs.push_back(
        {workload, config(Protocol::directory, PredictorKind::none),
         "directory"});
    sweep_jobs.push_back(
        {workload, config(Protocol::broadcast, PredictorKind::none),
         "broadcast"});
    for (auto [name, kind] : predictors)
        sweep_jobs.push_back(
            {workload, config(Protocol::predicted, kind), name});

    std::printf("Predictor comparison on '%s'\n", workload.c_str());
    const auto results = runSweep(sweep_jobs, jobs);
    const ExperimentResult &dir = results[0];

    banner("Latency / bandwidth / storage trade-off "
           "(normalized to directory)");
    Table t({"scheme", "miss lat.", "exec time", "+bw/miss %",
             "accuracy %", "energy", "storage KB"});
    row(t, "directory", dir, dir);
    row(t, "broadcast", results[1], dir);
    for (std::size_t k = 0; k < 4; ++k)
        row(t, predictors[k].first, results[2 + k], dir);
    t.print();

    std::printf("\n(SP should sit near ADDR/INST on latency and "
                "bandwidth at a fraction of the storage)\n");
    return 0;
}
