/**
 * @file
 * Writing your own workload: defines a small producer/consumer
 * ring program directly against the public ThreadContext API
 * (coroutines + barriers + locks), runs it under the directory
 * baseline and under SP-prediction, and shows the predictor
 * internals at work (prediction register, SP-table contents,
 * per-source accuracy).
 */

#include <cstdio>

#include "analysis/report.hh"
#include "sim/cmp_system.hh"

using namespace spp;

namespace {

/**
 * Each thread repeatedly produces a block of lines, waits at a
 * barrier, and consumes its left neighbour's block; every 4th round
 * it updates a lock-protected global accumulator. Textbook stable
 * neighbour communication plus a migratory lock line.
 */
Task
ringProgram(ThreadContext &ctx)
{
    constexpr Pc pc = 0x9000;
    const CoreId t = ctx.self();
    const unsigned n = ctx.numThreads();
    const CoreId left = (t + n - 1) % n;
    constexpr unsigned block = 24;
    constexpr unsigned rounds = 20;

    // Parallel first-touch of this thread's block.
    for (unsigned i = 0; i < block; ++i)
        co_await ctx.write(ctx.shared(t * 64 + i), pc + 0);
    co_await ctx.barrier(0, pc + 1);

    for (unsigned round = 0; round < rounds; ++round) {
        // Produce.
        for (unsigned i = 0; i < block; ++i)
            co_await ctx.write(ctx.shared(t * 64 + i), pc + 2);
        co_await ctx.barrier(1, pc + 3);
        // Consume the left neighbour's block.
        for (unsigned i = 0; i < block; ++i)
            co_await ctx.read(ctx.shared(left * 64 + i), pc + 4);
        co_await ctx.compute(200);
        // Occasional global reduction under a lock.
        if (round % 4 == 3) {
            co_await ctx.lock(0);
            co_await ctx.write(ctx.shared(4096), pc + 5);
            co_await ctx.unlock(0);
        }
        co_await ctx.barrier(2, pc + 6);
    }
    if (t == 0)
        co_await ctx.join(pc + 7);
}

RunResult
runRing(Protocol proto, PredictorKind kind, SpPredictor **sp_out)
{
    Config cfg;
    cfg.protocol = proto;
    cfg.predictor = kind;
    static CmpSystem *sys = nullptr; // Keep alive for inspection.
    delete sys;
    sys = new CmpSystem(cfg);
    RunResult r = sys->run(ringProgram);
    if (sp_out)
        *sp_out = sys->spPredictor();
    return r;
}

} // namespace

int
main()
{
    std::printf("Custom workload: 16-thread producer/consumer ring\n");

    RunResult dir = runRing(Protocol::directory, PredictorKind::none,
                            nullptr);
    SpPredictor *sp = nullptr;
    RunResult pred = runRing(Protocol::predicted, PredictorKind::sp,
                             &sp);

    banner("Results");
    Table t({"metric", "directory", "sp-predictor"});
    t.cell("execution cycles")
        .cell(std::uint64_t{dir.ticks})
        .cell(std::uint64_t{pred.ticks}).endRow();
    t.cell("avg miss latency")
        .cell(dir.mem.missLatency.mean(), 1)
        .cell(pred.mem.missLatency.mean(), 1).endRow();
    t.cell("communicating misses")
        .cell(dir.mem.communicatingMisses.value())
        .cell(pred.mem.communicatingMisses.value()).endRow();
    t.cell("predictions sufficient")
        .cell(std::uint64_t{0})
        .cell(pred.mem.predictionsSufficient.value()).endRow();
    t.print();

    banner("Predictor internals after the run");
    std::printf("SP-table entries: %zu (%zu bits total)\n",
                sp->table().entryCount(), sp->storageBits());
    std::printf("epochs started: %lu, noisy: %lu, lock epochs: %lu\n",
                static_cast<unsigned long>(
                    sp->stats().epochsStarted.value()),
                static_cast<unsigned long>(
                    sp->stats().noisyEpochs.value()),
                static_cast<unsigned long>(
                    sp->stats().lockEpochs.value()));
    const SpEntry *entry = sp->table().entry(0, 0x9003);
    std::printf("core 0 signature for the consume epoch: %s "
                "(the left neighbour, core 15)\n",
                entry && !entry->sigs.empty()
                    ? entry->sigs[0].toString().c_str()
                    : "(none)");

    banner("Accuracy by prediction source");
    Table st({"source", "sufficient predictions"});
    for (auto src : {PredSource::warmup, PredSource::history,
                     PredSource::pattern, PredSource::lock,
                     PredSource::recovery}) {
        st.cell(toString(src))
            .cell(pred.mem.sufficientBySource[
                static_cast<std::size_t>(src)])
            .endRow();
    }
    st.print();
    return 0;
}
