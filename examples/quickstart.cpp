/**
 * @file
 * Quickstart: build a 16-core CMP, run one workload under the
 * baseline directory protocol and under SP-prediction, and print the
 * headline comparison (miss latency, execution time, accuracy).
 *
 * Usage: quickstart [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiment.hh"
#include "analysis/report.hh"
#include "common/logging.hh"

using namespace spp;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "ocean";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    std::printf("SP-prediction quickstart: workload '%s', scale %g\n",
                workload.c_str(), scale);

    ExperimentConfig base;
    base.config.protocol = Protocol::directory;
    base.scale = scale;

    ExperimentConfig sp = base;
    sp.config.protocol = Protocol::predicted;
    sp.config.predictor = PredictorKind::sp;

    ExperimentResult dir_res = runExperiment(workload, base);
    ExperimentResult sp_res = runExperiment(workload, sp);

    banner("Directory baseline vs SP-prediction");
    Table t({"metric", "directory", "sp-predictor"});
    t.cell("execution cycles")
        .cell(std::uint64_t{dir_res.run.ticks})
        .cell(std::uint64_t{sp_res.run.ticks}).endRow();
    t.cell("L2 misses")
        .cell(dir_res.run.mem.misses.value())
        .cell(sp_res.run.mem.misses.value()).endRow();
    t.cell("communicating misses")
        .cell(dir_res.run.mem.communicatingMisses.value())
        .cell(sp_res.run.mem.communicatingMisses.value()).endRow();
    t.cell("avg miss latency")
        .cell(dir_res.avgMissLatency(), 1)
        .cell(sp_res.avgMissLatency(), 1).endRow();
    t.cell("NoC bytes")
        .cell(dir_res.run.noc.flitBytes.value())
        .cell(sp_res.run.noc.flitBytes.value()).endRow();
    t.print();

    std::printf(
        "\nSP-prediction: accuracy %.1f%% of communicating misses, "
        "miss latency %.1f%% of baseline, execution time %.1f%% of "
        "baseline\n",
        100.0 * sp_res.predictionAccuracy(),
        100.0 * sp_res.avgMissLatency() / dir_res.avgMissLatency(),
        100.0 * static_cast<double>(sp_res.run.ticks) /
            static_cast<double>(dir_res.run.ticks));
    return 0;
}
