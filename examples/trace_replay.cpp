/**
 * @file
 * Trace-driven predictor study (the paper's Section 3.2 methodology):
 * record an L2-miss + sync-point trace from one timing run, save it
 * to disk, reload it, and replay it offline through all four
 * destination-set predictors — no timing simulation needed for the
 * comparison.
 *
 * Usage: trace_replay [workload] [scale] [trace-file]
 *    or: trace_replay --load FILE
 *
 * --load skips the recording step and replays an existing trace file
 * — e.g. one saved by bench/fuzz_protocol --report for a failing fuzz
 * case — through all four predictors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/event_trace.hh"
#include "analysis/report.hh"
#include "workload/workload.hh"

using namespace spp;

namespace {

/** Replay @p trace offline through every predictor kind. */
void
replayAll(const EventTrace &trace, const Config &cfg)
{
    banner("Offline replay (no timing simulation)");
    Table t({"predictor", "accuracy %", "attempts",
             "avg set size", "storage KB"});
    for (auto [name, kind] :
         {std::pair{"SP", PredictorKind::sp},
          std::pair{"ADDR", PredictorKind::addr},
          std::pair{"INST", PredictorKind::inst},
          std::pair{"UNI", PredictorKind::uni}}) {
        OfflineResult r = evaluateOffline(trace, cfg, kind);
        t.cell(name)
            .cell(100.0 * r.accuracy(), 1)
            .cell(r.attempted)
            .cell(r.predictedTargets, 2)
            .cell(static_cast<double>(r.storageBits) / 8.0 / 1024.0,
                  2)
            .endRow();
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--load") == 0) {
        const EventTrace loaded = EventTrace::load(argv[2]);
        std::printf("loaded %zu events from %s\n", loaded.size(),
                    argv[2]);
        replayAll(loaded, Config{});
        return 0;
    }

    const std::string workload = argc > 1 ? argv[1] : "streamcluster";
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/spp_" + workload + ".trace";

    const WorkloadSpec *spec = findWorkload(workload);
    if (!spec) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return 1;
    }

    // 1. Record from a live directory-protocol run.
    Config cfg;
    CmpSystem sys(cfg);
    EventTrace trace;
    trace.attach(sys);
    WorkloadParams params;
    params.scale = scale;
    sys.run([&](ThreadContext &ctx) {
        return spec->run(ctx, params);
    });
    std::printf("recorded %zu events from '%s'\n", trace.size(),
                workload.c_str());

    // 2. Round-trip through the on-disk format.
    trace.save(path);
    EventTrace loaded = EventTrace::load(path);
    std::printf("saved and reloaded %zu events from %s\n",
                loaded.size(), path.c_str());

    // 3. Replay offline through every predictor.
    replayAll(loaded, cfg);
    return 0;
}
